//! Evaluation metrics used throughout the paper's experiments: ROC-AUC and
//! F1 for matching (Table 6), MAP / MRR / P@1 for hypernym ranking (Table 3),
//! and precision/recall/F1 for tagging (Table 5).

/// Area under the ROC curve from `(score, is_positive)` pairs, computed via
/// the rank statistic (equivalent to the Mann–Whitney U). Ties share rank.
///
/// Returns 0.5 when one class is absent (no ranking information).
pub fn roc_auc(scored: &[(f32, bool)]) -> f64 {
    let pos = scored.iter().filter(|(_, y)| *y).count();
    let neg = scored.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    let mut sorted: Vec<(f32, bool)> = scored.to_vec();
    sorted.sort_by(|a, b| crate::rank::score_asc(&a.0, &b.0).then(a.1.cmp(&b.1)));
    // Assign average ranks to ties.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1].0 == sorted[i].0 {
            j += 1;
        }
        // Ranks are 1-based; ties get the mean rank of the run.
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for item in &sorted[i..=j] {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (pos as f64) * (pos as f64 + 1.0) / 2.0;
    u / (pos as f64 * neg as f64)
}

/// Binary classification counts at a threshold.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PrF1 {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1 score.
    pub f1: f64,
}

/// Precision/recall/F1 for predictions `score >= threshold`.
pub fn binary_prf(scored: &[(f32, bool)], threshold: f32) -> PrF1 {
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for &(s, y) in scored {
        let pred = s >= threshold;
        match (pred, y) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    prf_from_counts(tp, fp, fn_)
}

/// Precision/recall/F1 from raw counts.
pub fn prf_from_counts(tp: usize, fp: usize, fn_: usize) -> PrF1 {
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrF1 {
        precision,
        recall,
        f1,
    }
}

/// Classification accuracy over `(prediction, gold)` pairs.
pub fn accuracy(pairs: &[(bool, bool)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().filter(|(p, y)| p == y).count() as f64 / pairs.len() as f64
}

/// One ranked query: candidate scores with relevance flags, ranked by
/// descending score before metric computation. Ties break on the original
/// candidate index so the ranking (and every metric over it) is stable.
fn ranked(scored: &[(f32, bool)]) -> Vec<bool> {
    let mut order: Vec<(usize, f32)> = scored.iter().map(|&(s, _)| s).enumerate().collect();
    order.sort_by(crate::rank::by_score_then_id);
    order
        .into_iter()
        .map(|(i, _)| scored.get(i).is_some_and(|&(_, y)| y))
        .collect()
}

/// Average precision of one ranked query (0 if it has no relevant items).
pub fn average_precision(scored: &[(f32, bool)]) -> f64 {
    let flags = ranked(scored);
    let total_rel = flags.iter().filter(|&&y| y).count();
    if total_rel == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, &rel) in flags.iter().enumerate() {
        if rel {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / total_rel as f64
}

/// Reciprocal rank of the first relevant item (0 if none).
pub fn reciprocal_rank(scored: &[(f32, bool)]) -> f64 {
    for (i, rel) in ranked(scored).into_iter().enumerate() {
        if rel {
            return 1.0 / (i + 1) as f64;
        }
    }
    0.0
}

/// Precision among the top `k` ranked items.
pub fn precision_at_k(scored: &[(f32, bool)], k: usize) -> f64 {
    let flags = ranked(scored);
    let k = k.min(flags.len());
    if k == 0 {
        return 0.0;
    }
    flags[..k].iter().filter(|&&y| y).count() as f64 / k as f64
}

/// Aggregate ranking metrics over many queries, as reported in Table 3.
#[derive(Clone, Copy, Debug, Default)]
pub struct RankingMetrics {
    /// Map.
    pub map: f64,
    /// Mrr.
    pub mrr: f64,
    /// P at 1.
    pub p_at_1: f64,
}

/// Mean of AP / RR / P@1 over queries (each query: `(score, relevant)`
pub fn ranking_metrics(queries: &[Vec<(f32, bool)>]) -> RankingMetrics {
    if queries.is_empty() {
        return RankingMetrics::default();
    }
    let n = queries.len() as f64;
    let mut m = RankingMetrics::default();
    for q in queries {
        m.map += average_precision(q);
        m.mrr += reciprocal_rank(q);
        m.p_at_1 += precision_at_k(q, 1);
    }
    m.map /= n;
    m.mrr /= n;
    m.p_at_1 /= n;
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted() {
        let perfect = vec![(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        assert!((roc_auc(&perfect) - 1.0).abs() < 1e-9);
        let inverted = vec![(0.1, true), (0.2, true), (0.8, false), (0.9, false)];
        assert!(roc_auc(&inverted).abs() < 1e-9);
    }

    #[test]
    fn auc_random_is_half() {
        let ties = vec![(0.5, true), (0.5, false), (0.5, true), (0.5, false)];
        assert!((roc_auc(&ties) - 0.5).abs() < 1e-9);
        assert_eq!(roc_auc(&[(0.3, true)]), 0.5); // degenerate: one class
    }

    #[test]
    fn auc_known_value() {
        // 2 pos, 2 neg; one inversion out of 4 pairs -> AUC = 0.75.
        let s = vec![(0.9, true), (0.6, false), (0.4, true), (0.2, false)];
        assert!((roc_auc(&s) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn prf_counts() {
        let m = prf_from_counts(8, 2, 2);
        assert!((m.precision - 0.8).abs() < 1e-9);
        assert!((m.recall - 0.8).abs() < 1e-9);
        assert!((m.f1 - 0.8).abs() < 1e-9);
        assert_eq!(prf_from_counts(0, 0, 0), PrF1::default());
    }

    #[test]
    fn binary_prf_threshold() {
        let s = vec![(0.9, true), (0.7, false), (0.3, true), (0.1, false)];
        let m = binary_prf(&s, 0.5);
        assert!((m.precision - 0.5).abs() < 1e-9);
        assert!((m.recall - 0.5).abs() < 1e-9);
    }

    #[test]
    fn average_precision_known() {
        // Ranked relevance: [1, 0, 1] -> AP = (1/1 + 2/3) / 2 = 5/6.
        let s = vec![(0.9, true), (0.5, false), (0.1, true)];
        assert!((average_precision(&s) - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn reciprocal_rank_and_p_at_k() {
        let s = vec![(0.9, false), (0.5, true), (0.1, true)];
        assert!((reciprocal_rank(&s) - 0.5).abs() < 1e-9);
        assert!((precision_at_k(&s, 2) - 0.5).abs() < 1e-9);
        assert!((precision_at_k(&s, 3) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(reciprocal_rank(&[(0.4, false)]), 0.0);
    }

    #[test]
    fn ranking_metrics_aggregates() {
        let queries = vec![
            vec![(0.9, true), (0.1, false)], // AP=1, RR=1, P@1=1
            vec![(0.9, false), (0.1, true)], // AP=0.5, RR=0.5, P@1=0
        ];
        let m = ranking_metrics(&queries);
        assert!((m.map - 0.75).abs() < 1e-9);
        assert!((m.mrr - 0.75).abs() < 1e-9);
        assert!((m.p_at_1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tied_scores_rank_stably_by_index() {
        // All scores tied: the ranking must be the original candidate order,
        // so AP/RR/P@k are deterministic functions of the input order.
        let s = vec![(0.5, false), (0.5, true), (0.5, true)];
        assert!((reciprocal_rank(&s) - 0.5).abs() < 1e-9);
        assert!((precision_at_k(&s, 1) - 0.0).abs() < 1e-9);
        // AP = (1/2 + 2/3) / 2 = 7/12 under index-stable tie-breaking.
        assert!((average_precision(&s) - 7.0 / 12.0).abs() < 1e-9);
        // A permuted copy with the same multiset of scores ranks by its own
        // input order — repeated evaluation of either is bit-stable.
        assert_eq!(average_precision(&s), average_precision(&s));
    }

    #[test]
    fn accuracy_counts_matches() {
        let pairs = vec![(true, true), (false, true), (false, false), (true, false)];
        assert!((accuracy(&pairs) - 0.5).abs() < 1e-9);
        assert_eq!(accuracy(&[]), 0.0);
    }
}
