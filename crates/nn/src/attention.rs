//! Attention mechanisms.
//!
//! [`SelfAttention`] is the scaled-dot-product self-attention used to encode
//! mutual influence within a concept (§5.2.2, §5.3.1). [`PairAttention`] is
//! the additive two-way attention matrix between a concept and an item title
//! (§6, eq. 11–13).

use rand::Rng;

use crate::graph::{Graph, NodeId};
use crate::param::{Param, ParamSet};
use crate::tensor::Tensor;

/// Single-head scaled dot-product self-attention.
///
/// `H (T, d) -> softmax(HWq (HWk)^T / sqrt(dk)) HWv : (T, dk)`.
pub struct SelfAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    dk: usize,
}

impl SelfAttention {
    /// Create a new instance.
    pub fn new<R: Rng>(ps: &mut ParamSet, name: &str, dim: usize, dk: usize, rng: &mut R) -> Self {
        SelfAttention {
            wq: ps.add(format!("{name}.wq"), Tensor::xavier(dim, dk, rng)),
            wk: ps.add(format!("{name}.wk"), Tensor::xavier(dim, dk, rng)),
            wv: ps.add(format!("{name}.wv"), Tensor::xavier(dim, dk, rng)),
            dk,
        }
    }

    /// `(T, d) -> (T, dk)`.
    pub fn forward(&self, g: &mut Graph, h: NodeId) -> NodeId {
        let wq = g.param(&self.wq);
        let wk = g.param(&self.wk);
        let wv = g.param(&self.wv);
        let q = g.matmul(h, wq);
        let k = g.matmul(h, wk);
        let v = g.matmul(h, wv);
        let kt = g.transpose(k);
        let scores = g.matmul(q, kt);
        let scaled = g.scale(scores, 1.0 / (self.dk as f32).sqrt());
        let attn = g.softmax_rows(scaled);
        g.matmul(attn, v)
    }

    /// Output embedding dimension.
    pub fn output_dim(&self) -> usize {
        self.dk
    }
}

/// Additive (Bahdanau-style) pairwise attention matrix between two sequences:
///
/// `att[i][j] = v^T tanh(W1 a_i + W2 b_j)` (paper eq. 11).
pub struct PairAttention {
    w1: Param,
    w2: Param,
    v: Param,
}

impl PairAttention {
    /// Create a new instance.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        name: &str,
        dim_a: usize,
        dim_b: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        PairAttention {
            w1: ps.add(format!("{name}.w1"), Tensor::xavier(dim_a, hidden, rng)),
            w2: ps.add(format!("{name}.w2"), Tensor::xavier(dim_b, hidden, rng)),
            v: ps.add(format!("{name}.v"), Tensor::xavier(hidden, 1, rng)),
        }
    }

    /// `a: (m, da)`, `b: (l, db)` -> attention matrix `(m, l)`.
    pub fn forward(&self, g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
        let m = g.value(a).rows();
        let l = g.value(b).rows();
        let w1 = g.param(&self.w1);
        let w2 = g.param(&self.w2);
        let v = g.param(&self.v);
        let pa = g.matmul(a, w1); // (m, h)
        let pb = g.matmul(b, w2); // (l, h)
                                  // All (i, j) pairs: interleave a-rows l times, tile b-rows m times.
        let pa_rep = g.repeat_interleave(pa, l); // (m*l, h): a0,a0..,a1,a1..
        let pb_rep = g.repeat_tile(pb, m); // (m*l, h): b0,b1..,b0,b1..
        let sum = g.add(pa_rep, pb_rep);
        let t = g.tanh(sum);
        let s = g.matmul(t, v); // (m*l, 1)
        g.reshape(s, m, l)
    }
}

/// Attention-weighted pooling (paper eq. 12–14): turns an attention matrix
/// and a sequence into a single vector.
///
/// `weights_i = softmax_i(sum_j att[i][j])`, output `= sum_i weights_i seq_i`.
pub fn attentive_pool(g: &mut Graph, att: NodeId, seq: NodeId) -> NodeId {
    let rowsum = g.sum_cols(att); // (m, 1)
    let scores = g.transpose(rowsum); // (1, m)
    let weights = g.softmax_rows(scores); // (1, m)
    g.matmul(weights, seq) // (1, d)
}

/// Pooling along the other axis of the attention matrix (weights for the
/// second sequence, eq. 13).
pub fn attentive_pool_cols(g: &mut Graph, att: NodeId, seq: NodeId) -> NodeId {
    let colsum = g.sum_rows(att); // (1, l)
    let weights = g.softmax_rows(colsum); // (1, l)
    g.matmul(weights, seq) // (1, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn self_attention_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let sa = SelfAttention::new(&mut ps, "sa", 6, 4, &mut rng);
        let mut g = Graph::new();
        let h = g.input(Tensor::zeros(5, 6));
        let out = sa.forward(&mut g, h);
        assert_eq!(g.value(out).shape(), (5, 4));
    }

    #[test]
    fn pair_attention_matches_naive_computation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut ps = ParamSet::new();
        let pa = PairAttention::new(&mut ps, "pa", 3, 2, 4, &mut rng);
        let a = Tensor::from_vec(2, 3, vec![0.1, 0.2, 0.3, -0.1, 0.0, 0.5]);
        let b = Tensor::from_vec(3, 2, vec![0.4, -0.2, 0.7, 0.1, -0.3, 0.6]);

        let mut g = Graph::new();
        let an = g.input(a.clone());
        let bn = g.input(b.clone());
        let att = pa.forward(&mut g, an, bn);
        assert_eq!(g.value(att).shape(), (2, 3));

        // Naive reference: att[i][j] = v^T tanh(W1 a_i + W2 b_j).
        let w1 = pa.w1.value().clone();
        let w2 = pa.w2.value().clone();
        let v = pa.v.value().clone();
        for i in 0..2 {
            for j in 0..3 {
                let ai = Tensor::row(a.row_slice(i).to_vec());
                let bj = Tensor::row(b.row_slice(j).to_vec());
                let x = ai.matmul(&w1).add(&bj.matmul(&w2)).map(f32::tanh);
                let expected = x.matmul(&v).item();
                let got = g.value(att).get(i, j);
                assert!(
                    (expected - got).abs() < 1e-5,
                    "att[{i}][{j}]: naive {expected} vs graph {got}"
                );
            }
        }
    }

    #[test]
    fn attentive_pool_produces_convex_combination() {
        // With a uniform attention matrix, the pooled vector is the mean row.
        let mut g = Graph::new();
        let att = g.input(Tensor::zeros(2, 3));
        let seq = g.input(Tensor::from_vec(2, 2, vec![1.0, 0.0, 3.0, 4.0]));
        let pooled = attentive_pool(&mut g, att, seq);
        let out = g.value(pooled);
        assert_eq!(out.shape(), (1, 2));
        assert!((out.get(0, 0) - 2.0).abs() < 1e-5);
        assert!((out.get(0, 1) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn gradients_flow_through_pair_attention() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut ps = ParamSet::new();
        let pa = PairAttention::new(&mut ps, "pa", 2, 2, 3, &mut rng);
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(2, 2, vec![0.3; 4]));
        let b = g.input(Tensor::from_vec(2, 2, vec![0.7; 4]));
        let att = pa.forward(&mut g, a, b);
        let loss = g.sum_all(att);
        g.backward(loss);
        assert!(pa.w1.grad().data().iter().any(|&v| v != 0.0));
        assert!(pa.w2.grad().data().iter().any(|&v| v != 0.0));
        assert!(pa.v.grad().data().iter().any(|&v| v != 0.0));
    }
}
