//! Trainable parameters and optimizers.
//!
//! Parameters live outside the per-example [`crate::graph::Graph`] tapes and
//! are shared into them via [`crate::graph::Graph::param`] /
//! [`crate::graph::Graph::lookup`]. A [`ParamSet`] groups every parameter of
//! a model so optimizers can step them together.
//!
//! # Snapshot-pointer storage
//!
//! A parameter's value is an `Arc<Tensor>` behind a `RwLock` plus a
//! monotonically increasing **version** counter. Readers never hold the lock
//! while computing: [`Param::value`] clones the `Arc` under a momentary read
//! lock and hands back an owned snapshot, and hot paths (the autodiff tape's
//! parameter cache, see [`crate::graph::Graph`]) go further — they keep the
//! `Arc` across examples and revalidate it with a **single atomic version
//! load**, so steady-state forward passes acquire no lock at all. Writers go
//! through [`Param::value_mut`], a copy-on-write guard: if any snapshot is
//! still alive the tensor is cloned before mutation (readers keep their
//! consistent old value — a mid-step value can never be observed torn), and
//! the version is bumped when the guard drops so caches refresh on their
//! next read.
//!
//! Workers never write gradients into shared storage directly; each
//! accumulates into a private [`GradShadow`] which the trainer merges in a
//! fixed order, keeping training byte-identical for any worker count.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::tensor::Tensor;

/// Adam moment state (lazily sized with the parameter).
struct AdamState {
    /// First moment.
    m: Tensor,
    /// Second moment.
    v: Tensor,
}

struct ParamInner {
    /// Process-unique identity, used to key shadow-gradient buffers.
    id: u64,
    name: String,
    /// Current value, published as a snapshot pointer (see module docs).
    value: RwLock<Arc<Tensor>>,
    /// Bumped (with `Release` ordering) after every value write; snapshot
    /// caches revalidate with one `Acquire` load.
    version: AtomicU64,
    grad: RwLock<Tensor>,
    adam: RwLock<AdamState>,
}

fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// A shared, trainable tensor.
#[derive(Clone)]
pub struct Param(Arc<ParamInner>);

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(0);

/// Owned snapshot of a parameter's value, returned by [`Param::value`].
///
/// Dereferences to [`Tensor`]. The snapshot stays internally consistent for
/// as long as it is held — writers copy-on-write instead of mutating a
/// tensor a reader can still see — but it does not pin the parameter:
/// concurrent [`Param::value_mut`] writes simply publish a newer snapshot.
pub struct ParamValue(Arc<Tensor>);

impl Deref for ParamValue {
    type Target = Tensor;

    fn deref(&self) -> &Tensor {
        &self.0
    }
}

/// Write guard over a parameter's value, returned by [`Param::value_mut`].
///
/// The first mutable dereference copies the tensor if any snapshot of it is
/// still alive (copy-on-write), so readers never observe a half-written
/// value. Dropping the guard bumps the parameter's version, invalidating
/// every snapshot cache.
pub struct ParamValueMut<'a> {
    guard: RwLockWriteGuard<'a, Arc<Tensor>>,
    version: &'a AtomicU64,
}

impl Deref for ParamValueMut<'_> {
    type Target = Tensor;

    fn deref(&self) -> &Tensor {
        &self.guard
    }
}

impl DerefMut for ParamValueMut<'_> {
    fn deref_mut(&mut self) -> &mut Tensor {
        Arc::make_mut(&mut self.guard)
    }
}

impl Drop for ParamValueMut<'_> {
    fn drop(&mut self) {
        // Publish while the write lock is still held: any reader that
        // observes the new version is ordered after this store and will
        // read the new value once the lock releases.
        self.version.fetch_add(1, Ordering::Release);
    }
}

impl Param {
    /// Create a new instance.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let (r, c) = value.shape();
        Param(Arc::new(ParamInner {
            id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
            value: RwLock::new(Arc::new(value)),
            version: AtomicU64::new(0),
            grad: RwLock::new(Tensor::zeros(r, c)),
            adam: RwLock::new(AdamState {
                m: Tensor::zeros(r, c),
                v: Tensor::zeros(r, c),
            }),
        }))
    }

    /// Process-unique identity (stable for all clones of this parameter).
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// Human-readable name.
    pub fn name(&self) -> String {
        self.0.name.clone()
    }

    /// Owned snapshot of the current value (momentary read lock, no lock
    /// held while the snapshot is used).
    pub fn value(&self) -> ParamValue {
        ParamValue(self.value_arc())
    }

    /// The raw snapshot pointer. Hot paths cache this `Arc` and revalidate
    /// it against [`Param::version`] instead of re-locking per read.
    pub fn value_arc(&self) -> Arc<Tensor> {
        Arc::clone(&read_lock(&self.0.value))
    }

    /// Snapshot version, bumped after every value write. A cached
    /// [`Param::value_arc`] obtained at (or after) some observed version is
    /// current for as long as this still loads the same number.
    pub fn version(&self) -> u64 {
        self.0.version.load(Ordering::Acquire)
    }

    /// Value mut (copy-on-write; bumps the version on drop).
    pub fn value_mut(&self) -> ParamValueMut<'_> {
        ParamValueMut {
            guard: write_lock(&self.0.value),
            version: &self.0.version,
        }
    }

    /// Grad.
    pub fn grad(&self) -> RwLockReadGuard<'_, Tensor> {
        read_lock(&self.0.grad)
    }

    /// Grad mut.
    pub fn grad_mut(&self) -> RwLockWriteGuard<'_, Tensor> {
        write_lock(&self.0.grad)
    }

    /// Zero grad.
    pub fn zero_grad(&self) {
        self.grad_mut().fill_zero();
    }

    /// Number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.value().len()
    }
}

/// Per-worker gradient buffer: gradients of one (or a few) examples,
/// accumulated privately during [`crate::graph::Graph::backward_shadow`] and
/// merged into shared [`Param`] storage by the trainer in a fixed order.
///
/// Buffers are keyed by [`Param::id`]; parameters the tape never touched (or
/// frozen tensors that are not registered in any [`ParamSet`]) simply have no
/// entry and receive no gradient on merge. Shadows are reusable arenas:
/// [`GradShadow::reset`] zeroes the accumulated gradients in place, keeping
/// every buffer allocation for the next batch.
#[derive(Default)]
pub struct GradShadow {
    bufs: HashMap<u64, Tensor>,
}

impl GradShadow {
    /// Create a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no gradient buffer has ever been accumulated.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Zero every buffer in place, keeping the allocations (arena reuse
    /// between batches — no per-example allocation on the training path).
    pub fn reset(&mut self) {
        for t in self.bufs.values_mut() {
            t.fill_zero();
        }
    }

    fn buf_for(&mut self, p: &Param) -> &mut Tensor {
        self.bufs.entry(p.id()).or_insert_with(|| {
            let (r, c) = p.value().shape();
            Tensor::zeros(r, c)
        })
    }

    /// Accumulate a dense gradient for `p` (the `Op::Param` case).
    pub fn accum(&mut self, p: &Param, g: &Tensor) {
        self.buf_for(p).add_assign(g);
    }

    /// Scatter-add row gradients for an embedding lookup (the `Op::Lookup`
    /// case): row `r` of `g` is added to row `indices[r]` of the buffer.
    pub fn accum_rows(&mut self, p: &Param, indices: &[usize], g: &Tensor) {
        let buf = self.buf_for(p);
        for (r, &ix) in indices.iter().enumerate() {
            let src = g.row_slice(r);
            for (dst, s) in buf.row_slice_mut(ix).iter_mut().zip(src) {
                *dst += s;
            }
        }
    }

    /// Add every buffered gradient into its parameter's shared grad storage.
    ///
    /// Iterates `params` in registration order, so for a fixed merge sequence
    /// the summation order — and hence the result, bit for bit — does not
    /// depend on how examples were sharded across workers.
    pub fn merge_into(&self, params: &ParamSet) {
        for p in params.iter() {
            if let Some(buf) = self.bufs.get(&p.id()) {
                p.grad_mut().add_assign(buf);
            }
        }
    }
}

/// All parameters of a model.
#[derive(Clone, Default)]
pub struct ParamSet {
    params: Vec<Param>,
}

impl ParamSet {
    /// Create a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create, register and return a new parameter.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> Param {
        let p = Param::new(name, value);
        self.params.push(p.clone());
        p
    }

    /// Register an existing parameter (e.g. one shared between models).
    pub fn register(&mut self, p: &Param) {
        self.params.push(p.clone());
    }

    /// Absorb all parameters of another set (for composite models).
    pub fn extend(&mut self, other: &ParamSet) {
        self.params.extend(other.params.iter().cloned());
    }

    /// Iterate over entries.
    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.params.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Zero grad.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Total scalar weight count across all parameters.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(Param::num_weights).sum()
    }

    /// Copy of every parameter value, in registration order.
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.params.iter().map(|p| p.value().clone()).collect()
    }

    /// Restore values captured by [`ParamSet::snapshot`].
    pub fn restore(&self, weights: &[Tensor]) {
        assert_eq!(
            weights.len(),
            self.params.len(),
            "snapshot size mismatch: {} weights for {} params",
            weights.len(),
            self.params.len()
        );
        for (p, w) in self.params.iter().zip(weights) {
            *p.value_mut() = w.clone();
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| {
                let g = p.grad();
                g.data().iter().map(|v| v * v).sum::<f32>()
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Scale all gradients so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for p in &self.params {
                let mut g = p.grad_mut();
                for v in g.data_mut() {
                    *v *= s;
                }
            }
        }
    }
}

/// Optimizer interface: apply accumulated gradients, then zero them.
pub trait Optimizer {
    /// See the module documentation.
    fn step(&mut self, params: &ParamSet);
}

/// Plain stochastic gradient descent with optional gradient clipping.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Clip.
    pub clip: Option<f32>,
}

impl Sgd {
    /// Create a new instance.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            clip: Some(5.0),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &ParamSet) {
        if let Some(c) = self.clip {
            params.clip_grad_norm(c);
        }
        for p in params.iter() {
            let mut value = p.value_mut();
            let mut grad = write_lock(&p.0.grad);
            value.axpy(-self.lr, &grad);
            grad.fill_zero();
        }
    }
}

/// Adam (Kingma & Ba) with bias correction and optional gradient clipping.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Beta1.
    pub beta1: f32,
    /// Beta2.
    pub beta2: f32,
    /// Eps.
    pub eps: f32,
    /// Clip.
    pub clip: Option<f32>,
    t: i32,
}

impl Adam {
    /// Create a new instance.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: Some(5.0),
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &ParamSet) {
        if let Some(c) = self.clip {
            params.clip_grad_norm(c);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for p in params.iter() {
            let mut value = p.value_mut();
            let mut grad = write_lock(&p.0.grad);
            let mut adam = write_lock(&p.0.adam);
            let AdamState { m, v } = &mut *adam;
            let out = value.data_mut();
            for (k, w) in out.iter_mut().enumerate() {
                let g = grad.data()[k];
                let mk = self.beta1 * m.data()[k] + (1.0 - self.beta1) * g;
                let vk = self.beta2 * v.data()[k] + (1.0 - self.beta2) * g * g;
                m.data_mut()[k] = mk;
                v.data_mut()[k] = vk;
                let mhat = mk / bc1;
                let vhat = vk / bc2;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            grad.fill_zero();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn quadratic_loss(p: &Param) -> f32 {
        // L = (w - 3)^2 summed; minimized at w = 3.
        let mut g = Graph::new();
        let w = g.param(p);
        let target = g.input(Tensor::full(2, 1, 3.0));
        let d = g.sub(w, target);
        let sq = g.mul(d, d);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.value(loss).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = Param::new("w", Tensor::zeros(2, 1));
        let mut set = ParamSet::new();
        set.register(&p);
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            quadratic_loss(&p);
            opt.step(&set);
        }
        assert!((p.value().get(0, 0) - 3.0).abs() < 1e-2);
        assert!((p.value().get(1, 0) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = Param::new("w", Tensor::zeros(2, 1));
        let mut set = ParamSet::new();
        set.register(&p);
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            quadratic_loss(&p);
            opt.step(&set);
        }
        assert!((p.value().get(0, 0) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn clip_grad_norm_caps_global_norm() {
        let p = Param::new("w", Tensor::zeros(3, 1));
        *p.grad_mut() = Tensor::from_vec(3, 1, vec![3.0, 4.0, 0.0]);
        let mut set = ParamSet::new();
        set.register(&p);
        assert!((set.grad_norm() - 5.0).abs() < 1e-6);
        set.clip_grad_norm(1.0);
        assert!((set.grad_norm() - 1.0).abs() < 1e-5);
        // Direction preserved.
        let g = p.grad();
        assert!((g.data()[0] / g.data()[1] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn step_zeroes_gradients() {
        let p = Param::new("w", Tensor::zeros(1, 1));
        let mut set = ParamSet::new();
        set.register(&p);
        *p.grad_mut() = Tensor::scalar(1.0);
        Sgd::new(0.1).step(&set);
        assert_eq!(p.grad().item(), 0.0);
    }

    #[test]
    fn param_ids_are_unique_and_clone_stable() {
        let a = Param::new("a", Tensor::zeros(1, 1));
        let b = Param::new("b", Tensor::zeros(1, 1));
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id(), a.clone().id());
    }

    #[test]
    fn held_snapshot_survives_a_write() {
        // The snapshot-pointer contract: a reader's snapshot is immutable
        // even while a writer updates the parameter (copy-on-write).
        let p = Param::new("w", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let before = p.value();
        let v0 = p.version();
        *p.value_mut() = Tensor::from_vec(1, 2, vec![9.0, 9.0]);
        assert_eq!(before.data(), &[1.0, 2.0], "held snapshot mutated");
        assert_eq!(p.value().data(), &[9.0, 9.0]);
        assert!(p.version() > v0, "write must bump the version");
    }

    #[test]
    fn version_bumps_on_in_place_mutation() {
        let p = Param::new("w", Tensor::zeros(1, 1));
        let v0 = p.version();
        p.value_mut().data_mut()[0] = 4.0;
        assert!(p.version() > v0);
        assert_eq!(p.value().item(), 4.0);
    }

    #[test]
    fn shadow_merge_matches_direct_accumulation() {
        let p = Param::new("w", Tensor::zeros(2, 2));
        let e = Param::new("emb", Tensor::zeros(3, 2));
        let mut set = ParamSet::new();
        set.register(&p);
        set.register(&e);

        let mut shadow = GradShadow::new();
        shadow.accum(&p, &Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        shadow.accum_rows(&e, &[2, 0, 2], &Tensor::from_vec(3, 2, vec![1.0; 6]));
        shadow.merge_into(&set);

        assert_eq!(p.grad().data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.grad().data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn shadow_reset_zeroes_but_keeps_buffers() {
        let p = Param::new("w", Tensor::zeros(2, 2));
        let mut set = ParamSet::new();
        set.register(&p);
        let mut shadow = GradShadow::new();
        shadow.accum(&p, &Tensor::from_vec(2, 2, vec![1.0; 4]));
        shadow.reset();
        assert!(!shadow.is_empty(), "reset keeps the arena buffers");
        shadow.accum(&p, &Tensor::from_vec(2, 2, vec![2.0; 4]));
        shadow.merge_into(&set);
        assert_eq!(
            p.grad().data(),
            &[2.0; 4],
            "reset gradients must not leak into the next merge"
        );
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut set = ParamSet::new();
        let p = set.add("w", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let snap = set.snapshot();
        *p.value_mut() = Tensor::from_vec(1, 2, vec![9.0, 9.0]);
        set.restore(&snap);
        assert_eq!(p.value().data(), &[1.0, 2.0]);
    }

    #[test]
    fn param_set_counts_weights() {
        let mut set = ParamSet::new();
        set.add("a", Tensor::zeros(2, 3));
        set.add("b", Tensor::zeros(4, 1));
        assert_eq!(set.num_weights(), 10);
        assert_eq!(set.len(), 2);
    }
}
