//! Trainable parameters and optimizers.
//!
//! Parameters live outside the per-example [`crate::graph::Graph`] tapes and
//! are shared into them via [`crate::graph::Graph::param`] /
//! [`crate::graph::Graph::lookup`]. A [`ParamSet`] groups every parameter of
//! a model so optimizers can step them together.

use std::cell::{Ref, RefCell, RefMut};
use std::rc::Rc;

use crate::tensor::Tensor;

struct ParamInner {
    name: String,
    value: Tensor,
    grad: Tensor,
    /// Adam first-moment state (lazily sized).
    m: Tensor,
    /// Adam second-moment state.
    v: Tensor,
}

/// A shared, trainable tensor.
#[derive(Clone)]
pub struct Param(Rc<RefCell<ParamInner>>);

impl Param {
    /// Create a new instance.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let (r, c) = value.shape();
        Param(Rc::new(RefCell::new(ParamInner {
            name: name.into(),
            value,
            grad: Tensor::zeros(r, c),
            m: Tensor::zeros(r, c),
            v: Tensor::zeros(r, c),
        })))
    }

    /// Human-readable name.
    pub fn name(&self) -> String {
        self.0.borrow().name.clone()
    }

    /// Value.
    pub fn value(&self) -> Ref<'_, Tensor> {
        Ref::map(self.0.borrow(), |p| &p.value)
    }

    /// Value mut.
    pub fn value_mut(&self) -> RefMut<'_, Tensor> {
        RefMut::map(self.0.borrow_mut(), |p| &mut p.value)
    }

    /// Grad.
    pub fn grad(&self) -> Ref<'_, Tensor> {
        Ref::map(self.0.borrow(), |p| &p.grad)
    }

    /// Grad mut.
    pub fn grad_mut(&self) -> RefMut<'_, Tensor> {
        RefMut::map(self.0.borrow_mut(), |p| &mut p.grad)
    }

    /// Zero grad.
    pub fn zero_grad(&self) {
        self.0.borrow_mut().grad.fill_zero();
    }

    /// Number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.0.borrow().value.len()
    }
}

/// All parameters of a model.
#[derive(Clone, Default)]
pub struct ParamSet {
    params: Vec<Param>,
}

impl ParamSet {
    /// Create a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create, register and return a new parameter.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> Param {
        let p = Param::new(name, value);
        self.params.push(p.clone());
        p
    }

    /// Register an existing parameter (e.g. one shared between models).
    pub fn register(&mut self, p: &Param) {
        self.params.push(p.clone());
    }

    /// Absorb all parameters of another set (for composite models).
    pub fn extend(&mut self, other: &ParamSet) {
        self.params.extend(other.params.iter().cloned());
    }

    /// Iterate over entries.
    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.params.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Zero grad.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Total scalar weight count across all parameters.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(Param::num_weights).sum()
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| {
                let g = p.grad();
                g.data().iter().map(|v| v * v).sum::<f32>()
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Scale all gradients so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for p in &self.params {
                let mut g = p.grad_mut();
                for v in g.data_mut() {
                    *v *= s;
                }
            }
        }
    }
}

/// Optimizer interface: apply accumulated gradients, then zero them.
pub trait Optimizer {
    /// See the module documentation.
    fn step(&mut self, params: &ParamSet);
}

/// Plain stochastic gradient descent with optional gradient clipping.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Clip.
    pub clip: Option<f32>,
}

impl Sgd {
    /// Create a new instance.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            clip: Some(5.0),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &ParamSet) {
        if let Some(c) = self.clip {
            params.clip_grad_norm(c);
        }
        for p in params.iter() {
            let inner = &p.0;
            let mut b = inner.borrow_mut();
            let ParamInner { value, grad, .. } = &mut *b;
            value.axpy(-self.lr, grad);
            grad.fill_zero();
        }
    }
}

/// Adam (Kingma & Ba) with bias correction and optional gradient clipping.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Beta1.
    pub beta1: f32,
    /// Beta2.
    pub beta2: f32,
    /// Eps.
    pub eps: f32,
    /// Clip.
    pub clip: Option<f32>,
    t: i32,
}

impl Adam {
    /// Create a new instance.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: Some(5.0),
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &ParamSet) {
        if let Some(c) = self.clip {
            params.clip_grad_norm(c);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for p in params.iter() {
            let mut b = p.0.borrow_mut();
            let ParamInner {
                value, grad, m, v, ..
            } = &mut *b;
            for k in 0..value.len() {
                let g = grad.data()[k];
                let mk = self.beta1 * m.data()[k] + (1.0 - self.beta1) * g;
                let vk = self.beta2 * v.data()[k] + (1.0 - self.beta2) * g * g;
                m.data_mut()[k] = mk;
                v.data_mut()[k] = vk;
                let mhat = mk / bc1;
                let vhat = vk / bc2;
                value.data_mut()[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            grad.fill_zero();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn quadratic_loss(p: &Param) -> f32 {
        // L = (w - 3)^2 summed; minimized at w = 3.
        let mut g = Graph::new();
        let w = g.param(p);
        let target = g.input(Tensor::full(2, 1, 3.0));
        let d = g.sub(w, target);
        let sq = g.mul(d, d);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.value(loss).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = Param::new("w", Tensor::zeros(2, 1));
        let mut set = ParamSet::new();
        set.register(&p);
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            quadratic_loss(&p);
            opt.step(&set);
        }
        assert!((p.value().get(0, 0) - 3.0).abs() < 1e-2);
        assert!((p.value().get(1, 0) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = Param::new("w", Tensor::zeros(2, 1));
        let mut set = ParamSet::new();
        set.register(&p);
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            quadratic_loss(&p);
            opt.step(&set);
        }
        assert!((p.value().get(0, 0) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn clip_grad_norm_caps_global_norm() {
        let p = Param::new("w", Tensor::zeros(3, 1));
        *p.grad_mut() = Tensor::from_vec(3, 1, vec![3.0, 4.0, 0.0]);
        let mut set = ParamSet::new();
        set.register(&p);
        assert!((set.grad_norm() - 5.0).abs() < 1e-6);
        set.clip_grad_norm(1.0);
        assert!((set.grad_norm() - 1.0).abs() < 1e-5);
        // Direction preserved.
        let g = p.grad();
        assert!((g.data()[0] / g.data()[1] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn step_zeroes_gradients() {
        let p = Param::new("w", Tensor::zeros(1, 1));
        let mut set = ParamSet::new();
        set.register(&p);
        *p.grad_mut() = Tensor::scalar(1.0);
        Sgd::new(0.1).step(&set);
        assert_eq!(p.grad().item(), 0.0);
    }

    #[test]
    fn param_set_counts_weights() {
        let mut set = ParamSet::new();
        set.add("a", Tensor::zeros(2, 3));
        set.add("b", Tensor::zeros(4, 1));
        assert_eq!(set.num_weights(), 10);
        assert_eq!(set.len(), 2);
    }
}
