//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation applied during a forward pass as a
//! [`Node`] in a flat tape. Calling [`Graph::backward`] walks the tape in
//! reverse, accumulating gradients into each node and, for leaves created by
//! [`Graph::param`] / [`Graph::lookup`], into the external [`Param`] storage
//! that outlives the graph. A tape is built per training example; training
//! workers keep one [`Graph`] per merge lane and [`Graph::reset`] it between
//! examples so node storage and parameter snapshots are reused.
//!
//! Parameter reads are lock-free on the steady state: the tape caches each
//! parameter's snapshot pointer ([`Param::value_arc`]) keyed by
//! [`Param::version`], so recording a `param` node costs one atomic load
//! plus an `Arc` bump — no `RwLock` and no tensor copy. The cache refetches
//! under the (brief) read lock only on the first touch after an optimizer
//! step.

// Column-indexed pooling loops read more clearly as index loops.
#![allow(clippy::needless_range_loop)]

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::Arc;

use crate::param::{GradShadow, Param};
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`] tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeId(pub(crate) usize);

/// A custom differentiable operation (used by the CRF layers, whose gradients
/// are computed analytically via forward–backward rather than by tracing).
///
/// `Send + Sync` is a supertrait because tapes live inside the trainer's
/// per-lane arenas, which are shared across the worker pool; implementors
/// should be plain data captured at record time.
pub trait CustomOp: Send + Sync {
    /// Gradient contributions to each parent, given the upstream gradient and
    /// the parents' forward values. Must return one tensor per parent with
    /// the parent's shape.
    fn grads(&self, out_grad: &Tensor, parent_values: &[&Tensor]) -> Vec<Tensor>;
    /// Name for error messages.
    fn name(&self) -> &'static str {
        "custom"
    }
}

enum Op {
    /// Constant leaf.
    Input,
    /// Leaf tied to an external parameter.
    Param(Param),
    /// Embedding gather: rows of the parameter indexed by `indices`.
    Lookup {
        param: Param,
        indices: Vec<usize>,
    },
    MatMul(NodeId, NodeId),
    Add(NodeId, NodeId),
    /// `(m,n) + (1,n)` broadcast over rows.
    AddRow(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Scale(NodeId, f32),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Relu(NodeId),
    ConcatCols(Vec<NodeId>),
    ConcatRows(Vec<NodeId>),
    SliceRows(NodeId, usize),
    MeanRows(NodeId),
    /// Column-wise max over rows; caches the argmax row per column.
    MaxRows(NodeId, Vec<usize>),
    SumCols(NodeId),
    SumRows(NodeId),
    SumAll(NodeId),
    Transpose(NodeId),
    SoftmaxRows(NodeId),
    Reshape(NodeId),
    /// Vertically tile the parent `t` times: rows `[A; A; ...; A]`.
    RepeatTile(NodeId, usize),
    /// Repeat each parent row `t` times consecutively.
    RepeatInterleave(NodeId, usize),
    /// Mean binary cross-entropy with logits against fixed targets.
    BceWithLogits(NodeId, Vec<f32>),
    Custom {
        parents: Vec<NodeId>,
        op: Box<dyn CustomOp>,
    },
}

/// A node's forward value: either computed by (and owned by) the tape, or a
/// shared snapshot of a parameter — sharing the `Arc` is what removes the
/// per-example deep copy of every parameter matrix from the hot path.
#[derive(Clone)]
enum NodeValue {
    Owned(Tensor),
    Shared(Arc<Tensor>),
}

impl Deref for NodeValue {
    type Target = Tensor;

    fn deref(&self) -> &Tensor {
        match self {
            NodeValue::Owned(t) => t,
            NodeValue::Shared(a) => a,
        }
    }
}

struct Node {
    value: NodeValue,
    grad: Tensor,
    op: Op,
}

/// An autodiff tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// Per-parameter snapshot cache: id → (version at fetch, snapshot).
    /// Survives [`Graph::reset`] so steady-state reads are lock-free.
    snapshots: HashMap<u64, (u64, Arc<Tensor>)>,
}

impl Graph {
    /// Create a new instance.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::with_capacity(64),
            snapshots: HashMap::new(),
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clear the tape for the next example, keeping node capacity and the
    /// parameter snapshot cache (arena reuse on the training path).
    pub fn reset(&mut self) {
        self.nodes.clear();
    }

    /// Current snapshot of `p`, revalidated by version. One `Acquire` load
    /// on the hit path; refetches under the read lock only after the
    /// parameter was written (at most once per param per optimizer step).
    ///
    /// A write racing between the version load and the snapshot fetch can
    /// cache a newer value under the older version; the next call then sees
    /// a version mismatch and refetches — the cache can run one step behind
    /// for one read, never serve a torn or stale-forever value.
    fn snapshot_of(&mut self, p: &Param) -> Arc<Tensor> {
        let version = p.version();
        match self.snapshots.get(&p.id()) {
            Some((v, arc)) if *v == version => Arc::clone(arc),
            _ => {
                let arc = p.value_arc();
                self.snapshots.insert(p.id(), (version, Arc::clone(&arc)));
                arc
            }
        }
    }

    fn push_value(&mut self, value: NodeValue, op: Op) -> NodeId {
        let (r, c) = value.shape();
        self.nodes.push(Node {
            value,
            grad: Tensor::zeros(r, c),
            op,
        });
        NodeId(self.nodes.len() - 1)
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        self.push_value(NodeValue::Owned(value), op)
    }

    /// Forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Accumulated gradient of a node (after [`Graph::backward`]).
    pub fn grad(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].grad
    }

    // ---- leaves ---------------------------------------------------------

    /// Constant input leaf.
    pub fn input(&mut self, t: Tensor) -> NodeId {
        self.push(t, Op::Input)
    }

    /// Leaf reading a parameter's current value; gradients accumulate into
    /// the parameter on `backward`. The node shares the parameter's snapshot
    /// pointer — no lock on the cached path and no tensor copy.
    pub fn param(&mut self, p: &Param) -> NodeId {
        let value = self.snapshot_of(p);
        self.push_value(NodeValue::Shared(value), Op::Param(p.clone()))
    }

    /// Embedding lookup: gathers `indices` rows of `p` into an
    /// `(indices.len(), dim)` matrix. Gradients scatter-add back into `p`.
    /// The gather runs against the cached snapshot, not under a lock.
    pub fn lookup(&mut self, p: &Param, indices: &[usize]) -> NodeId {
        let table = self.snapshot_of(p);
        let dim = table.cols();
        let mut out = Tensor::zeros(indices.len(), dim);
        for (r, &ix) in indices.iter().enumerate() {
            assert!(
                ix < table.rows(),
                "lookup index {ix} out of range {}",
                table.rows()
            );
            out.row_slice_mut(r).copy_from_slice(table.row_slice(ix));
        }
        self.push(
            out,
            Op::Lookup {
                param: p.clone(),
                indices: indices.to_vec(),
            },
        )
    }

    // ---- arithmetic ------------------------------------------------------

    /// Matmul.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Add.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Broadcast add: `a` is `(m,n)`, `b` is `(1,n)`.
    pub fn add_row(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (m, n) = self.value(a).shape();
        assert_eq!(
            self.value(b).shape(),
            (1, n),
            "add_row: bias must be (1,{n})"
        );
        let mut v = self.value(a).clone();
        for r in 0..m {
            let bias = self.nodes[b.0].value.row_slice(0).to_vec();
            for (x, bi) in v.row_slice_mut(r).iter_mut().zip(bias) {
                *x += bi;
            }
        }
        self.push(v, Op::AddRow(a, b))
    }

    /// Sub.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Mul.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Scale.
    pub fn scale(&mut self, a: NodeId, alpha: f32) -> NodeId {
        let v = self.value(a).scale(alpha);
        self.push(v, Op::Scale(a, alpha))
    }

    // ---- activations -----------------------------------------------------

    /// Sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Tanh.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Relu.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Softmax rows.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).softmax_rows();
        self.push(v, Op::SoftmaxRows(a))
    }

    // ---- shape ops -------------------------------------------------------

    /// Concat cols.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        let values: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::hstack(&values);
        self.push(v, Op::ConcatCols(parts.to_vec()))
    }

    /// Concat rows.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        let values: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::vstack(&values);
        self.push(v, Op::ConcatRows(parts.to_vec()))
    }

    /// Rows `[start, start+len)` of `a`.
    pub fn slice_rows(&mut self, a: NodeId, start: usize, len: usize) -> NodeId {
        let src = self.value(a);
        let cols = src.cols();
        assert!(start + len <= src.rows(), "slice_rows out of bounds");
        let mut v = Tensor::zeros(len, cols);
        for r in 0..len {
            v.row_slice_mut(r).copy_from_slice(src.row_slice(start + r));
        }
        self.push(v, Op::SliceRows(a, start))
    }

    /// Mean over rows: `(m,n) -> (1,n)`.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let src = self.value(a);
        let (m, n) = src.shape();
        let mut v = Tensor::zeros(1, n);
        for r in 0..m {
            for c in 0..n {
                v.data_mut()[c] += src.get(r, c);
            }
        }
        let v = v.scale(1.0 / m as f32);
        self.push(v, Op::MeanRows(a))
    }

    /// Column-wise max over rows: `(m,n) -> (1,n)`.
    pub fn max_rows(&mut self, a: NodeId) -> NodeId {
        let src = self.value(a);
        let (m, n) = src.shape();
        assert!(m > 0, "max_rows over empty tensor");
        let mut v = Tensor::full(1, n, f32::NEG_INFINITY);
        let mut arg = vec![0usize; n];
        for r in 0..m {
            for c in 0..n {
                let x = src.get(r, c);
                if x > v.get(0, c) {
                    v.set(0, c, x);
                    arg[c] = r;
                }
            }
        }
        self.push(v, Op::MaxRows(a, arg))
    }

    /// Row sums: `(m,n) -> (m,1)`.
    pub fn sum_cols(&mut self, a: NodeId) -> NodeId {
        let src = self.value(a);
        let (m, n) = src.shape();
        let mut v = Tensor::zeros(m, 1);
        for r in 0..m {
            let mut acc = 0.0;
            for c in 0..n {
                acc += src.get(r, c);
            }
            v.set(r, 0, acc);
        }
        self.push(v, Op::SumCols(a))
    }

    /// Column sums: `(m,n) -> (1,n)`.
    pub fn sum_rows(&mut self, a: NodeId) -> NodeId {
        let src = self.value(a);
        let (m, n) = src.shape();
        let mut v = Tensor::zeros(1, n);
        for r in 0..m {
            for c in 0..n {
                v.data_mut()[c] += src.get(r, c);
            }
        }
        self.push(v, Op::SumRows(a))
    }

    /// Sum of all elements: `(m,n) -> (1,1)`.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let v = Tensor::scalar(self.value(a).sum());
        self.push(v, Op::SumAll(a))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Reshape.
    pub fn reshape(&mut self, a: NodeId, rows: usize, cols: usize) -> NodeId {
        let v = self.value(a).reshape(rows, cols);
        self.push(v, Op::Reshape(a))
    }

    /// Vertically tile `a` `t` times: `(m,n) -> (t*m, n)` as `[A; A; ...]`.
    pub fn repeat_tile(&mut self, a: NodeId, t: usize) -> NodeId {
        let src = self.value(a);
        let refs: Vec<&Tensor> = (0..t).map(|_| src).collect();
        let v = Tensor::vstack(&refs);
        self.push(v, Op::RepeatTile(a, t))
    }

    /// Repeat each row of `a` `t` times consecutively: row order
    /// `a0,a0,..,a1,a1,..`.
    pub fn repeat_interleave(&mut self, a: NodeId, t: usize) -> NodeId {
        let src = self.value(a);
        let (m, n) = src.shape();
        let mut v = Tensor::zeros(m * t, n);
        for r in 0..m {
            for k in 0..t {
                v.row_slice_mut(r * t + k).copy_from_slice(src.row_slice(r));
            }
        }
        self.push(v, Op::RepeatInterleave(a, t))
    }

    // ---- losses ----------------------------------------------------------

    /// Mean binary cross-entropy with logits. `logits` is flattened; one
    /// target per element. Returns a scalar node.
    pub fn bce_with_logits(&mut self, logits: NodeId, targets: &[f32]) -> NodeId {
        let x = self.value(logits);
        assert_eq!(
            x.len(),
            targets.len(),
            "bce: logits/targets length mismatch"
        );
        let mut loss = 0.0;
        for (&l, &t) in x.data().iter().zip(targets) {
            // Numerically stable: max(l,0) - l*t + ln(1+exp(-|l|)).
            loss += l.max(0.0) - l * t + (1.0 + (-l.abs()).exp()).ln();
        }
        loss /= targets.len() as f32;
        self.push(
            Tensor::scalar(loss),
            Op::BceWithLogits(logits, targets.to_vec()),
        )
    }

    /// Record a custom op with analytically computed gradients.
    pub fn custom(&mut self, parents: &[NodeId], value: Tensor, op: Box<dyn CustomOp>) -> NodeId {
        self.push(
            value,
            Op::Custom {
                parents: parents.to_vec(),
                op,
            },
        )
    }

    // ---- backward --------------------------------------------------------

    /// Backpropagate from `loss` (must be scalar). Gradients accumulate into
    /// each node and into any [`Param`] leaves.
    pub fn backward(&mut self, loss: NodeId) {
        self.backward_impl(loss, None);
    }

    /// Backpropagate from `loss` without touching shared [`Param`] gradient
    /// storage: parameter gradients accumulate into `shadow` instead, in the
    /// same (reverse-tape) order `backward` would use. This is the worker
    /// path of the data-parallel trainer — parameters are only read, so many
    /// tapes can run backward concurrently.
    pub fn backward_shadow(&mut self, loss: NodeId, shadow: &mut GradShadow) {
        self.backward_impl(loss, Some(shadow));
    }

    fn backward_impl(&mut self, loss: NodeId, mut shadow: Option<&mut GradShadow>) {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward from non-scalar");
        self.nodes[loss.0].grad = Tensor::scalar(1.0);

        for i in (0..=loss.0).rev() {
            let g = self.nodes[i].grad.clone();
            if g.data().iter().all(|&v| v == 0.0) {
                continue;
            }
            // Collect (parent, contribution) pairs with only immutable access,
            // then apply. Keeps borrowck happy at the cost of small clones.
            let mut contrib: Vec<(usize, Tensor)> = Vec::new();
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Param(p) => match shadow.as_deref_mut() {
                    Some(s) => s.accum(p, &g),
                    None => p.grad_mut().add_assign(&g),
                },
                Op::Lookup { param, indices } => match shadow.as_deref_mut() {
                    Some(s) => s.accum_rows(param, indices, &g),
                    None => {
                        let mut pg = param.grad_mut();
                        for (r, &ix) in indices.iter().enumerate() {
                            let src = g.row_slice(r);
                            for (dst, s) in pg.row_slice_mut(ix).iter_mut().zip(src) {
                                *dst += s;
                            }
                        }
                    }
                },
                Op::MatMul(a, b) => {
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    contrib.push((a.0, g.matmul_nt(bv)));
                    contrib.push((b.0, av.matmul_tn(&g)));
                }
                Op::Add(a, b) => {
                    contrib.push((a.0, g.clone()));
                    contrib.push((b.0, g.clone()));
                }
                Op::AddRow(a, b) => {
                    contrib.push((a.0, g.clone()));
                    let (m, n) = g.shape();
                    let mut gb = Tensor::zeros(1, n);
                    for r in 0..m {
                        for c in 0..n {
                            gb.data_mut()[c] += g.get(r, c);
                        }
                    }
                    contrib.push((b.0, gb));
                }
                Op::Sub(a, b) => {
                    contrib.push((a.0, g.clone()));
                    contrib.push((b.0, g.scale(-1.0)));
                }
                Op::Mul(a, b) => {
                    let av = self.nodes[a.0].value.clone();
                    let bv = self.nodes[b.0].value.clone();
                    contrib.push((a.0, g.mul(&bv)));
                    contrib.push((b.0, g.mul(&av)));
                }
                Op::Scale(a, alpha) => contrib.push((a.0, g.scale(*alpha))),
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let d = y.map(|v| v * (1.0 - v));
                    contrib.push((a.0, g.mul(&d)));
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let d = y.map(|v| 1.0 - v * v);
                    contrib.push((a.0, g.mul(&d)));
                }
                Op::Relu(a) => {
                    let x = &self.nodes[a.0].value;
                    let d = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    contrib.push((a.0, g.mul(&d)));
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.nodes[i].value;
                    let (m, n) = y.shape();
                    let mut ga = Tensor::zeros(m, n);
                    for r in 0..m {
                        let yr = y.row_slice(r);
                        let gr = g.row_slice(r);
                        let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                        for c in 0..n {
                            ga.set(r, c, yr[c] * (gr[c] - dot));
                        }
                    }
                    contrib.push((a.0, ga));
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    let rows = g.rows();
                    for &p in parts {
                        let pc = self.nodes[p.0].value.cols();
                        let mut gp = Tensor::zeros(rows, pc);
                        for r in 0..rows {
                            gp.row_slice_mut(r)
                                .copy_from_slice(&g.row_slice(r)[offset..offset + pc]);
                        }
                        contrib.push((p.0, gp));
                        offset += pc;
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let pr = self.nodes[p.0].value.rows();
                        let cols = g.cols();
                        let mut gp = Tensor::zeros(pr, cols);
                        for r in 0..pr {
                            gp.row_slice_mut(r).copy_from_slice(g.row_slice(offset + r));
                        }
                        contrib.push((p.0, gp));
                        offset += pr;
                    }
                }
                Op::SliceRows(a, start) => {
                    let (pr, pc) = self.nodes[a.0].value.shape();
                    let mut gp = Tensor::zeros(pr, pc);
                    for r in 0..g.rows() {
                        gp.row_slice_mut(start + r).copy_from_slice(g.row_slice(r));
                    }
                    contrib.push((a.0, gp));
                }
                Op::MeanRows(a) => {
                    let (m, n) = self.nodes[a.0].value.shape();
                    let mut gp = Tensor::zeros(m, n);
                    let inv = 1.0 / m as f32;
                    for r in 0..m {
                        for c in 0..n {
                            gp.set(r, c, g.get(0, c) * inv);
                        }
                    }
                    contrib.push((a.0, gp));
                }
                Op::MaxRows(a, arg) => {
                    let (m, n) = self.nodes[a.0].value.shape();
                    let mut gp = Tensor::zeros(m, n);
                    for c in 0..n {
                        gp.set(arg[c], c, g.get(0, c));
                    }
                    contrib.push((a.0, gp));
                }
                Op::SumCols(a) => {
                    let (m, n) = self.nodes[a.0].value.shape();
                    let mut gp = Tensor::zeros(m, n);
                    for r in 0..m {
                        for c in 0..n {
                            gp.set(r, c, g.get(r, 0));
                        }
                    }
                    contrib.push((a.0, gp));
                }
                Op::SumRows(a) => {
                    let (m, n) = self.nodes[a.0].value.shape();
                    let mut gp = Tensor::zeros(m, n);
                    for r in 0..m {
                        for c in 0..n {
                            gp.set(r, c, g.get(0, c));
                        }
                    }
                    contrib.push((a.0, gp));
                }
                Op::SumAll(a) => {
                    let (m, n) = self.nodes[a.0].value.shape();
                    contrib.push((a.0, Tensor::full(m, n, g.item())));
                }
                Op::Transpose(a) => contrib.push((a.0, g.transpose())),
                Op::Reshape(a) => {
                    let (m, n) = self.nodes[a.0].value.shape();
                    contrib.push((a.0, g.reshape(m, n)));
                }
                Op::RepeatTile(a, t) => {
                    let (m, n) = self.nodes[a.0].value.shape();
                    let mut gp = Tensor::zeros(m, n);
                    for k in 0..*t {
                        for r in 0..m {
                            for c in 0..n {
                                let v = gp.get(r, c) + g.get(k * m + r, c);
                                gp.set(r, c, v);
                            }
                        }
                    }
                    contrib.push((a.0, gp));
                }
                Op::RepeatInterleave(a, t) => {
                    let (m, n) = self.nodes[a.0].value.shape();
                    let mut gp = Tensor::zeros(m, n);
                    for r in 0..m {
                        for k in 0..*t {
                            for c in 0..n {
                                let v = gp.get(r, c) + g.get(r * t + k, c);
                                gp.set(r, c, v);
                            }
                        }
                    }
                    contrib.push((a.0, gp));
                }
                Op::BceWithLogits(a, targets) => {
                    let x = &self.nodes[a.0].value;
                    let (m, n) = x.shape();
                    let scale = g.item() / targets.len() as f32;
                    let mut gp = Tensor::zeros(m, n);
                    for (k, (&l, &t)) in x.data().iter().zip(targets).enumerate() {
                        let sig = 1.0 / (1.0 + (-l).exp());
                        gp.data_mut()[k] = scale * (sig - t);
                    }
                    contrib.push((a.0, gp));
                }
                Op::Custom { parents, op } => {
                    let values: Vec<&Tensor> =
                        parents.iter().map(|p| &*self.nodes[p.0].value).collect();
                    let grads = op.grads(&g, &values);
                    assert_eq!(
                        grads.len(),
                        parents.len(),
                        "{}: wrong grad count",
                        op.name()
                    );
                    for (&p, gp) in parents.iter().zip(grads) {
                        contrib.push((p.0, gp));
                    }
                }
            }
            for (pid, t) in contrib {
                self.nodes[pid].grad.add_assign(&t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use rand::SeedableRng;

    /// Finite-difference gradient check of `f` w.r.t. a parameter.
    fn grad_check(build: impl Fn(&mut Graph, &Param) -> NodeId, rows: usize, cols: usize) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let p = Param::new("p", Tensor::uniform(rows, cols, 0.5, &mut rng));
        let mut g = Graph::new();
        let loss = build(&mut g, &p);
        g.backward(loss);
        let analytic = p.grad().clone();
        let eps = 1e-3f32;
        for k in 0..rows * cols {
            let orig = p.value().data()[k];
            p.value_mut().data_mut()[k] = orig + eps;
            let mut g1 = Graph::new();
            let l1 = build(&mut g1, &p);
            let f1 = g1.value(l1).item();
            p.value_mut().data_mut()[k] = orig - eps;
            let mut g2 = Graph::new();
            let l2 = build(&mut g2, &p);
            let f2 = g2.value(l2).item();
            p.value_mut().data_mut()[k] = orig;
            let numeric = (f1 - f2) / (2.0 * eps);
            let a = analytic.data()[k];
            assert!(
                (a - numeric).abs() < 1e-2 * (1.0 + a.abs().max(numeric.abs())),
                "grad mismatch at {k}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_matmul_chain() {
        grad_check(
            |g, p| {
                let x = g.input(Tensor::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]));
                let w = g.param(p);
                let y = g.matmul(x, w);
                let t = g.tanh(y);
                g.sum_all(t)
            },
            3,
            2,
        );
    }

    #[test]
    fn grad_sigmoid_mul() {
        grad_check(
            |g, p| {
                let w = g.param(p);
                let s = g.sigmoid(w);
                let m = g.mul(s, w);
                g.sum_all(m)
            },
            2,
            2,
        );
    }

    #[test]
    fn grad_softmax_rows() {
        grad_check(
            |g, p| {
                let w = g.param(p);
                let s = g.softmax_rows(w);
                let x = g.input(Tensor::from_vec(2, 3, vec![1.0, -1.0, 2.0, 0.5, 0.3, -0.7]));
                let m = g.mul(s, x);
                g.sum_all(m)
            },
            2,
            3,
        );
    }

    #[test]
    fn grad_bce_with_logits() {
        grad_check(
            |g, p| {
                let w = g.param(p);
                g.bce_with_logits(w, &[1.0, 0.0, 1.0])
            },
            3,
            1,
        );
    }

    #[test]
    fn grad_pooling_and_concat() {
        grad_check(
            |g, p| {
                let w = g.param(p);
                let mx = g.max_rows(w);
                let mn = g.mean_rows(w);
                let cat = g.concat_cols(&[mx, mn]);
                let t = g.tanh(cat);
                g.sum_all(t)
            },
            3,
            2,
        );
    }

    #[test]
    fn grad_repeat_and_slice() {
        grad_check(
            |g, p| {
                let w = g.param(p);
                let tile = g.repeat_tile(w, 3);
                let inter = g.repeat_interleave(w, 3);
                let s = g.add(tile, inter);
                let sl = g.slice_rows(s, 1, 4);
                let t = g.sigmoid(sl);
                g.sum_all(t)
            },
            2,
            2,
        );
    }

    #[test]
    fn grad_add_row_broadcast() {
        grad_check(
            |g, p| {
                let x = g.input(Tensor::from_vec(3, 2, vec![0.1, 0.2, -0.3, 0.4, 0.0, -0.1]));
                let b = g.param(p);
                let y = g.add_row(x, b);
                let t = g.tanh(y);
                g.sum_all(t)
            },
            1,
            2,
        );
    }

    #[test]
    fn grad_transpose_reshape() {
        grad_check(
            |g, p| {
                let w = g.param(p);
                let t = g.transpose(w);
                let r = g.reshape(t, 1, 6);
                let s = g.sigmoid(r);
                g.sum_all(s)
            },
            2,
            3,
        );
    }

    #[test]
    fn lookup_accumulates_into_rows() {
        let p = Param::new(
            "emb",
            Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        );
        let mut g = Graph::new();
        let e = g.lookup(&p, &[0, 2, 0]);
        assert_eq!(g.value(e).row_slice(0), &[1.0, 2.0]);
        assert_eq!(g.value(e).row_slice(1), &[5.0, 6.0]);
        let loss = g.sum_all(e);
        g.backward(loss);
        // Row 0 used twice, row 1 unused, row 2 once.
        assert_eq!(p.grad().row_slice(0), &[2.0, 2.0]);
        assert_eq!(p.grad().row_slice(1), &[0.0, 0.0]);
        assert_eq!(p.grad().row_slice(2), &[1.0, 1.0]);
    }

    #[test]
    fn value_reuse_accumulates_gradient() {
        // y = w + w should give dy/dw = 2.
        let p = Param::new("w", Tensor::scalar(1.5));
        let mut g = Graph::new();
        let w = g.param(&p);
        let y = g.add(w, w);
        g.backward(y);
        assert_eq!(p.grad().item(), 2.0);
    }

    #[test]
    #[should_panic(expected = "non-scalar")]
    fn backward_from_matrix_panics() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 2));
        g.backward(x);
    }

    #[test]
    fn reset_reuses_tape_and_matches_fresh_graph() {
        let p = Param::new("w", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let mut reused = Graph::new();
        for _ in 0..3 {
            reused.reset();
            let w = reused.param(&p);
            let s = reused.sigmoid(w);
            let loss = reused.sum_all(s);
            reused.backward(loss);

            let mut fresh = Graph::new();
            let w2 = fresh.param(&p);
            let s2 = fresh.sigmoid(w2);
            let loss2 = fresh.sum_all(s2);
            fresh.backward(loss2);

            assert_eq!(reused.value(loss).data(), fresh.value(loss2).data());
            assert_eq!(reused.len(), fresh.len());
        }
    }

    #[test]
    fn snapshot_cache_sees_writes_across_reset() {
        // The lock-free cached read must revalidate by version: a parameter
        // write between tapes has to be visible to the next `param` node.
        let p = Param::new("w", Tensor::scalar(1.0));
        let mut g = Graph::new();
        let w = g.param(&p);
        assert_eq!(g.value(w).item(), 1.0);
        *p.value_mut() = Tensor::scalar(5.0);
        g.reset();
        let w = g.param(&p);
        assert_eq!(g.value(w).item(), 5.0, "stale snapshot served after write");
        // And lookups go through the same cache.
        let e = g.lookup(&p, &[0]);
        assert_eq!(g.value(e).item(), 5.0);
    }
}
