//! Shared ranking primitives for the serving layer: one total-order
//! comparator (`score` descending, id ascending) used by every ranked
//! surface in the workspace, and a bounded top-k heap so retrieval cost
//! is `O(n log k)` instead of sorting the whole candidate set.
//!
//! Float scores are ordered with [`f64::total_cmp`]/[`f32::total_cmp`],
//! so the comparator is a genuine total order even in the presence of
//! NaN (positive NaN sorts above `+inf`, negative NaN below `-inf`,
//! deterministically) — unlike `partial_cmp(..).unwrap_or(Equal)`,
//! which silently makes NaN equal to everything and can scramble
//! neighbouring ranks.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A ranking score: a float type with a total order.
pub trait Score: Copy {
    /// Total-order comparison (ascending, `total_cmp` semantics).
    fn total_cmp_asc(&self, other: &Self) -> Ordering;
}

impl Score for f32 {
    fn total_cmp_asc(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Score for f64 {
    fn total_cmp_asc(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

/// Descending total order on scores: `Less` means `a` ranks better.
pub fn score_desc<S: Score>(a: &S, b: &S) -> Ordering {
    b.total_cmp_asc(a)
}

/// Ascending total order on scores (for rank statistics that sort
/// worst-first, e.g. ROC-AUC).
pub fn score_asc<S: Score>(a: &S, b: &S) -> Ordering {
    a.total_cmp_asc(b)
}

/// The workspace-wide ranking order for `(id, score)` pairs: score
/// descending, id ascending as the deterministic tie-break. `Less`
/// means `a` ranks better (so `sort_by(by_score_then_id)` is
/// best-first).
pub fn by_score_then_id<I: Ord, S: Score>(a: &(I, S), b: &(I, S)) -> Ordering {
    score_desc(&a.1, &b.1).then_with(|| a.0.cmp(&b.0))
}

/// An `(id, score)` pair whose `Ord` *is* the workspace ranking order
/// ([`by_score_then_id`]): `Less` means "ranks better". This lets code
/// outside this module put ranked pairs straight into `BinaryHeap`s and
/// sorted structures without spelling a float comparison — a max-heap's
/// root is the worst kept entry, and `Reverse<Ranked<_, _>>` pops
/// best-first.
#[derive(Clone, Copy, Debug)]
pub struct Ranked<I, S>(
    /// Id (the deterministic tie-break, ascending).
    pub I,
    /// Score (descending).
    pub S,
);

impl<I: Ord, S: Score> PartialEq for Ranked<I, S> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<I: Ord, S: Score> Eq for Ranked<I, S> {}
impl<I: Ord, S: Score> PartialOrd for Ranked<I, S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<I: Ord, S: Score> Ord for Ranked<I, S> {
    fn cmp(&self, other: &Self) -> Ordering {
        by_score_then_id(&(&self.0, self.1), &(&other.0, other.1))
    }
}

/// Heap entry ordered so the binary max-heap's root is the *worst*
/// currently-kept candidate (the one a better candidate evicts).
struct Entry<I, S>((I, S));

impl<I: Ord, S: Score> PartialEq for Entry<I, S> {
    fn eq(&self, other: &Self) -> bool {
        by_score_then_id(&self.0, &other.0) == Ordering::Equal
    }
}
impl<I: Ord, S: Score> Eq for Entry<I, S> {}
impl<I: Ord, S: Score> PartialOrd for Entry<I, S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<I: Ord, S: Score> Ord for Entry<I, S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Ranking order directly: the heap max is the worst-ranked entry.
        by_score_then_id(&self.0, &other.0)
    }
}

/// Bounded best-k collector over `(id, score)` pairs under
/// [`by_score_then_id`]. Push is `O(log k)`; candidates worse than the
/// current k-th are rejected without allocation.
pub struct TopK<I, S> {
    k: usize,
    heap: BinaryHeap<Entry<I, S>>,
}

impl<I: Ord, S: Score> TopK<I, S> {
    /// Collector keeping the best `k` entries.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k.min(1024) + 1),
        }
    }

    /// Offer a candidate.
    pub fn push(&mut self, id: I, score: S) {
        if self.k == 0 {
            return;
        }
        let entry = Entry((id, score));
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(mut worst) = self.heap.peek_mut() {
            if entry.cmp(&worst) == Ordering::Less {
                *worst = entry;
            }
        }
    }

    /// Number of entries currently kept.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The kept entries, best first.
    pub fn into_sorted_vec(self) -> Vec<(I, S)> {
        // Ascending under `Ord` = best-ranked first, by construction.
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| e.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparator_ranks_score_desc_then_id_asc() {
        let mut v = vec![(3u32, 0.5f64), (1, 0.9), (2, 0.9), (4, 0.1)];
        v.sort_by(by_score_then_id);
        assert_eq!(v, vec![(1, 0.9), (2, 0.9), (3, 0.5), (4, 0.1)]);
    }

    #[test]
    fn nan_scores_order_deterministically() {
        // total_cmp: positive NaN sits above +inf, so it ranks first in
        // descending order — the point is the order is total and stable.
        let mut v = vec![(1u32, f64::NAN), (2, 0.0), (3, -1.0)];
        v.sort_by(by_score_then_id);
        assert!(v[0].1.is_nan());
        assert_eq!(v[1].0, 2);
        assert_eq!(v[2].0, 3);
        // And sorting is idempotent (a genuine total order).
        let w = v.clone();
        v.sort_by(by_score_then_id);
        assert_eq!(v[1..], w[1..]);
    }

    #[test]
    fn topk_matches_full_sort_truncate() {
        let items: Vec<(u32, f64)> = (0..100)
            .map(|i| (i, ((i * 37) % 13) as f64 / 13.0))
            .collect();
        for k in [0, 1, 3, 7, 100, 200] {
            let mut heap = TopK::new(k);
            for &(id, s) in &items {
                heap.push(id, s);
            }
            let mut sorted = items.clone();
            sorted.sort_by(by_score_then_id);
            sorted.truncate(k);
            assert_eq!(heap.into_sorted_vec(), sorted, "k={k}");
        }
    }

    #[test]
    fn ranked_wrapper_orders_like_the_comparator() {
        let mut heap = std::collections::BinaryHeap::new();
        for (id, s) in [(3u32, 0.5f64), (1, 0.9), (2, 0.9), (4, 0.1)] {
            heap.push(Ranked(id, s));
        }
        // Max-heap root = worst-ranked entry.
        assert_eq!(heap.peek().map(|r| r.0), Some(4));
        // Ascending sort = best-first, ties by ascending id.
        let sorted: Vec<u32> = heap.into_sorted_vec().into_iter().map(|r| r.0).collect();
        assert_eq!(sorted, vec![1, 2, 3, 4]);
        // Reverse pops best-first out of a max-heap.
        let mut rev = std::collections::BinaryHeap::new();
        rev.push(std::cmp::Reverse(Ranked(7u32, 0.2f32)));
        rev.push(std::cmp::Reverse(Ranked(5, 0.8)));
        assert_eq!(rev.pop().map(|r| r.0 .0), Some(5));
    }

    #[test]
    fn topk_works_with_f32_scores() {
        let mut heap = TopK::new(2);
        heap.push(10u64, 0.5f32);
        heap.push(20, 0.5);
        heap.push(5, 0.4);
        assert_eq!(heap.into_sorted_vec(), vec![(10, 0.5), (20, 0.5)]);
    }
}
