//! Dense 2-D `f32` tensors.
//!
//! Every value flowing through the autodiff graph is a row-major matrix.
//! Vectors are represented as `(1, n)` or `(n, 1)` matrices; scalars as
//! `(1, 1)`. This is all the paper's models need: sequences are `(len, dim)`
//! matrices, batches are processed one example at a time (the datasets are
//! synthetic and small, and the models are tiny by deep-learning standards).

use rand::Rng;

/// A dense row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a tensor filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} != {rows}x{cols}",
            data.len()
        );
        Tensor { rows, cols, data }
    }

    /// Create a `(1, n)` row vector.
    pub fn row(data: Vec<f32>) -> Self {
        let cols = data.len();
        Tensor {
            rows: 1,
            cols,
            data,
        }
    }

    /// Create a `(1, 1)` scalar tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor {
            rows: 1,
            cols: 1,
            data: vec![v],
        }
    }

    /// Xavier/Glorot uniform initialization: `U(-a, a)` with
    /// `a = sqrt(6 / (fan_in + fan_out))`.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
        Tensor { rows, cols, data }
    }

    /// Uniform initialization in `(-a, a)`.
    pub fn uniform<R: Rng>(rows: usize, cols: usize, a: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
        Tensor { rows, cols, data }
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Cols.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Data mut.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    /// Set.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    /// Row slice mut.
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single element of a `(1, 1)` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1x1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() on non-scalar tensor");
        self.data[0]
    }

    /// Matrix product `self x rhs`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: ({},{}) x ({},{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        // i-k-j loop order: the inner loop walks both `rhs` and `out` rows
        // contiguously, which matters once embedding tables get wide.
        for i in 0..self.rows {
            let out_row = i * rhs.cols;
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = k * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[out_row + j] += a * rhs.data[rhs_row + j];
                }
            }
        }
        out
    }

    /// `self^T x rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "matmul_tn shape mismatch");
        let mut out = Tensor::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            for i in 0..self.cols {
                let a = self.data[k * self.cols + i];
                if a == 0.0 {
                    continue;
                }
                let out_row = i * rhs.cols;
                let rhs_row = k * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[out_row + j] += a * rhs.data[rhs_row + j];
                }
            }
        }
        out
    }

    /// `self x rhs^T` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.cols, "matmul_nt shape mismatch");
        let mut out = Tensor::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            for j in 0..rhs.rows {
                let mut acc = 0.0;
                let a_row = i * self.cols;
                let b_row = j * rhs.cols;
                for k in 0..self.cols {
                    acc += self.data[a_row + k] * rhs.data[b_row + k];
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise `self + rhs` (same shape).
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise in-place accumulate.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * rhs`.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise `self - rhs`.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "mul shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, alpha: f32) -> Tensor {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Apply `f` elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Set all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Dot product of two tensors with identical shapes (flattened).
    pub fn dot(&self, rhs: &Tensor) -> f32 {
        assert_eq!(self.shape(), rhs.shape(), "dot shape mismatch");
        self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum()
    }

    /// Reinterpret the buffer with a new shape (same element count).
    pub fn reshape(&self, rows: usize, cols: usize) -> Tensor {
        assert_eq!(
            rows * cols,
            self.data.len(),
            "reshape element count mismatch"
        );
        Tensor {
            rows,
            cols,
            data: self.data.clone(),
        }
    }

    /// Stack `mats` vertically. All must share the column count.
    pub fn vstack(mats: &[&Tensor]) -> Tensor {
        assert!(!mats.is_empty(), "vstack of zero tensors");
        let cols = mats[0].cols;
        let rows: usize = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&m.data);
        }
        Tensor { rows, cols, data }
    }

    /// Stack `mats` horizontally. All must share the row count.
    pub fn hstack(mats: &[&Tensor]) -> Tensor {
        assert!(!mats.is_empty(), "hstack of zero tensors");
        let rows = mats[0].rows;
        let cols: usize = mats.iter().map(|m| m.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for m in mats {
                assert_eq!(m.rows, rows, "hstack row mismatch");
                out.data[r * cols + offset..r * cols + offset + m.cols]
                    .copy_from_slice(m.row_slice(r));
                offset += m.cols;
            }
        }
        out
    }

    /// Numerically stable softmax applied independently to each row.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = out.row_slice_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Index of the maximum element (row-major, first on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }
}

/// Numerically stable `log(sum(exp(xs)))`.
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        return f32::NEG_INFINITY;
    }
    let sum: f32 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.len(), 12);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Tensor::xavier(4, 3, &mut rng);
        let b = Tensor::xavier(4, 5, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = Tensor::xavier(4, 3, &mut rng);
        let b = Tensor::xavier(5, 3, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn stacking() {
        let a = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        let v = Tensor::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.data(), &[1.0, 2.0, 3.0, 4.0]);
        let h = Tensor::hstack(&[&a, &b]);
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // monotone within row
        assert!(s.get(0, 0) < s.get(0, 1) && s.get(0, 1) < s.get(0, 2));
    }

    #[test]
    fn softmax_rows_handles_large_values() {
        let t = Tensor::row(vec![1000.0, 1000.0]);
        let s = t.softmax_rows();
        assert!((s.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn log_sum_exp_stability() {
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2.0f32.ln())).abs() < 1e-3);
        assert_eq!(log_sum_exp(&[f32::NEG_INFINITY]), f32::NEG_INFINITY);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = Tensor::xavier(10, 10, &mut rng);
        let a = (6.0f32 / 20.0).sqrt();
        assert!(t.data().iter().all(|&v| v > -a && v < a));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = t.reshape(3, 2);
        assert_eq!(r.get(2, 1), 6.0);
        assert_eq!(r.reshape(2, 3), t);
    }
}
