//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses. The crates.io registry is unreachable in the build environment,
//! so the workspace resolves `proptest` to this path crate.
//!
//! Covered: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`]/[`prop_assume!`],
//! [`Strategy`] with `prop_map`, numeric range strategies, tuple
//! strategies (arity ≤ 8), `prop::collection::vec`, [`any`], [`Just`],
//! and character-class string patterns like `"[a-c]{1,3}"`.
//!
//! Differences from upstream: no shrinking (a failure reports the case
//! number, and generation is deterministic per test name, so failures
//! reproduce exactly), and no persisted failure seeds.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Deterministic per-case RNG: seeded from the test's module path, name,
/// and case index, so every run explores the same sequence and a failing
/// case number is reproducible.
pub fn case_rng(module: &str, name: &str, case: u64) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in module.bytes().chain([0x1f]).chain(name.bytes()) {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Test-loop configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried with new ones.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Strategy for any value of a samplable type: `any::<bool>()`.
pub struct Any<T>(PhantomData<T>);

/// Uniform strategy over a type's natural domain.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// String strategy from a restricted regex: one character class with an
/// optional repetition, e.g. `"[a-c]{1,3}"`, `"[a-d]{0,12}"`, `"xyz"`
/// (a literal). Anything fancier panics: extend the parser if a test
/// needs more.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_char_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

/// Parse `[class]{m,n}` / `[class]{n}` / `[class]` / literal.
/// Returns (alphabet, min_len, max_len); literals become a fixed
/// single-"choice" alphabet by being rejected here and handled above.
fn parse_char_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, reps) = rest.split_once(']')?;
    let mut chars = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        if it.peek() == Some(&'-') {
            let mut look = it.clone();
            look.next();
            if let Some(&end) = look.peek() {
                it.next();
                it.next();
                for v in c as u32..=end as u32 {
                    chars.extend(char::from_u32(v));
                }
                continue;
            }
        }
        chars.push(c);
    }
    if chars.is_empty() {
        return None;
    }
    let (lo, hi) = match reps.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
        None if reps.is_empty() => (1, 1),
        None => return None,
        Some(inner) => match inner.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = inner.trim().parse().ok()?;
                (n, n)
            }
        },
    };
    Some((chars, lo, hi))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` works as in upstream.
pub mod prop {
    pub use crate::collection;
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, case_rng, Just, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Fallible assertion: returns a `TestCaseError::Fail` from the enclosing
/// proptest case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion, `prop_assert!` flavored.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: `{:?} == {:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Inequality assertion, `prop_assert!` flavored.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: `{:?} != {:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

/// Reject the current inputs; the runner draws fresh ones.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut ran: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while ran < cfg.cases {
                assert!(
                    rejected < cfg.cases.saturating_mul(16) + 1024,
                    "prop_assume rejected too many cases ({rejected})"
                );
                let mut rng = $crate::case_rng(::std::module_path!(), stringify!($name), case);
                let current = case;
                case += 1;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => ran += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => rejected += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest `{}` failed at case #{current}: {msg}",
                        stringify!($name)
                    ),
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_parses() {
        let (chars, lo, hi) = super::parse_char_class_pattern("[a-c]{1,3}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (1, 3));
        let (chars, lo, hi) = super::parse_char_class_pattern("[xy]").unwrap();
        assert_eq!(chars, vec!['x', 'y']);
        assert_eq!((lo, hi), (1, 1));
        let (_, lo, hi) = super::parse_char_class_pattern("[a-z]{4}").unwrap();
        assert_eq!((lo, hi), (4, 4));
        assert!(super::parse_char_class_pattern("a+b").is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 3usize..10,
            v in prop::collection::vec(0u8..5, 2..6),
            s in "[a-c]{1,3}",
            flag in any::<bool>(),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 5));
            prop_assert!((1..=3).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let _ = flag;
        }

        #[test]
        fn prop_map_and_assume_work(pair in (0u8..10, 0u8..10).prop_map(|(a, b)| (a, b))) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u8..10) {
                prop_assert!(x / 2 > x, "x was {x}");
            }
        }
        always_fails();
    }
}
