//! Primitive-concept vocabulary mining (§4.1, evaluated in §7.2).
//!
//! The pipeline: (1) treat part of the lexicon as the *known* vocabulary
//! (the paper's ~2M aligned primitives), (2) build distant-supervision
//! training data by longest-match tagging of corpus sentences, keeping only
//! unambiguous matches, (3) train a BiLSTM-CRF sequence labeler over the 20
//! first-level domains in IOB scheme, (4) decode the corpus and harvest
//! spans the lexicon does not know, (5) send candidates to the oracle
//! (crowdsourcing stand-in) and admit the accepted ones.

use alicoco_corpus::{Dataset, Domain, Oracle};
use alicoco_nn::crf::Crf;
use alicoco_nn::layers::{Embedding, Linear};
use alicoco_nn::rnn::BiLstm;
use alicoco_nn::util::{FxHashMap, FxHashSet};
use alicoco_nn::{Adam, EpochStats, Graph, ParamSet, Tensor, TrainConfig, Trainer};
use rand::Rng;

/// IOB label space over the 20 domains: label 0 is `O`; domain `d` has
/// `B = 1 + 2d` and `I = 2 + 2d`.
pub const NUM_LABELS: usize = 41;

/// `B-` label of a domain.
pub fn b_label(d: Domain) -> usize {
    1 + 2 * d.index()
}

/// `I-` label of a domain.
pub fn i_label(d: Domain) -> usize {
    2 + 2 * d.index()
}

/// Domain of a non-`O` label.
pub fn label_domain(label: usize) -> Option<Domain> {
    if label == 0 || label >= NUM_LABELS {
        None
    } else {
        Some(Domain::from_index((label - 1) / 2))
    }
}

/// Is this label a `B-`?
pub fn is_begin(label: usize) -> bool {
    label != 0 && label < NUM_LABELS && (label - 1).is_multiple_of(2)
}

/// The known vocabulary: surface → domains, with multi-token surfaces
/// supported (category names like "trench coat").
#[derive(Clone, Debug, Default)]
pub struct KnownLexicon {
    /// token-sequence surface (space joined) → domains listing it.
    entries: FxHashMap<String, Vec<Domain>>,
    max_tokens: usize,
}

impl KnownLexicon {
    /// Sample a known subset of the world's full lexicon: each domain keeps
    /// ~`fraction` of its surfaces (deterministic per `rng`). The rest is
    /// the mining target.
    pub fn sample<R: Rng>(
        ds: &Dataset,
        fraction: f64,
        rng: &mut R,
    ) -> (KnownLexicon, KnownLexicon) {
        assert!((0.0..=1.0).contains(&fraction));
        let mut known = KnownLexicon::default();
        let mut heldout = KnownLexicon::default();
        let mut split = |surface: &str, domain: Domain, rng: &mut R| {
            if rng.gen_bool(fraction) {
                known.insert(surface, domain);
            } else {
                heldout.insert(surface, domain);
            }
        };
        for (surface, domain) in ds.world.lexicon.all_terms() {
            split(surface, domain, rng);
        }
        for id in ds.world.tree.ids() {
            if id == 0 {
                continue;
            }
            split(ds.world.tree.name(id), Domain::Category, rng);
        }
        (known, heldout)
    }

    /// Insert.
    pub fn insert(&mut self, surface: &str, domain: Domain) {
        let e = self.entries.entry(surface.to_string()).or_default();
        if !e.contains(&domain) {
            e.push(domain);
        }
        self.max_tokens = self.max_tokens.max(surface.split(' ').count());
    }

    /// Domains of.
    pub fn domains_of(&self, surface: &str) -> &[Domain] {
        self.entries.get(surface).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Contains.
    pub fn contains(&self, surface: &str) -> bool {
        self.entries.contains_key(surface)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Domain])> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

/// One distant-supervision example.
pub type TaggedSentence = (Vec<String>, Vec<usize>);

/// Function/template words allowed to carry `O` in a *perfectly matched*
/// sentence. Everything else must be covered by the known lexicon or the
/// sentence is dropped — this is the paper's "perfectly matched" filter
/// (§7.2), and it is essential: without it, held-out vocabulary appearing
/// in training sentences would be trained as `O` and never discovered.
const O_WORDS: &[&str] = &[
    "for",
    "in",
    "the",
    "a",
    "an",
    "and",
    "or",
    "of",
    "to",
    "i",
    "it",
    "is",
    "are",
    "this",
    "these",
    "from",
    "with",
    "you",
    "need",
    "our",
    "guide",
    "buy",
    "other",
    "such",
    "as",
    "kind",
    "bought",
    "great",
    "feels",
    "premium",
    "today",
    "gifts",
    ",",
    "hot",
    "sale",
    "free-shipping",
    "2026",
    "official",
    "flagship",
    "authentic",
    "quality",
    "new",
];

/// Longest-match distant supervision (§7.2): tag each sentence with IOB
/// labels from the known lexicon. A sentence is kept only when it matches
/// *perfectly*: every token is either part of exactly one known span or a
/// whitelisted function word; ambiguous spans (two domains) drop the
/// sentence.
pub fn distant_supervision(
    known: &KnownLexicon,
    sentences: &[Vec<String>],
    limit: usize,
) -> Vec<TaggedSentence> {
    let max_n = known.max_tokens.max(1);
    let mut out = Vec::new();
    'sent: for s in sentences {
        if s.is_empty() {
            continue;
        }
        let mut labels = vec![0usize; s.len()];
        let mut i = 0;
        while i < s.len() {
            let mut matched = 0;
            for n in (1..=max_n.min(s.len() - i)).rev() {
                let span = s[i..i + n].join(" ");
                let domains = known.domains_of(&span);
                if domains.len() > 1 {
                    continue 'sent; // ambiguous — drop whole sentence
                }
                if domains.len() == 1 {
                    labels[i] = b_label(domains[0]);
                    for k in 1..n {
                        labels[i + k] = i_label(domains[0]);
                    }
                    matched = n;
                    break;
                }
            }
            if matched == 0 {
                if !O_WORDS.contains(&s[i].as_str()) {
                    continue 'sent; // imperfect match — drop sentence
                }
                i += 1;
            } else {
                i += matched;
            }
        }
        out.push((s.clone(), labels));
        if out.len() >= limit {
            break;
        }
    }
    out
}

/// Configuration for the miner model.
#[derive(Clone, Debug)]
pub struct VocabMinerConfig {
    /// Hidden.
    pub hidden: usize,
    /// Shared training-loop hyper-parameters.
    pub train: TrainConfig,
    /// Seed.
    pub seed: u64,
}

impl Default for VocabMinerConfig {
    fn default() -> Self {
        VocabMinerConfig {
            hidden: 24,
            train: TrainConfig::new(3, 0.01),
            seed: 77,
        }
    }
}

/// BiLSTM-CRF sequence labeler (Figure 4).
pub struct VocabMiner {
    ps: ParamSet,
    emb: Embedding,
    encoder: BiLstm,
    proj: Linear,
    crf: Crf,
    cfg: VocabMinerConfig,
}

impl VocabMiner {
    /// Build the model, initializing word embeddings from the shared
    /// pre-trained vectors.
    pub fn new(res: &crate::resources::Resources, cfg: VocabMinerConfig) -> Self {
        let mut rng = alicoco_nn::util::seeded_rng(cfg.seed);
        let mut ps = ParamSet::new();
        let emb =
            Embedding::from_pretrained(&mut ps, "miner.emb", res.word_vectors.vectors.clone());
        let dim = emb.dim();
        let encoder = BiLstm::new(&mut ps, "miner.bilstm", dim, cfg.hidden, &mut rng);
        let proj = Linear::new(&mut ps, "miner.proj", 2 * cfg.hidden, NUM_LABELS, &mut rng);
        let crf = Crf::new(&mut ps, "miner.crf", NUM_LABELS, &mut rng);
        VocabMiner {
            ps,
            emb,
            encoder,
            proj,
            crf,
            cfg,
        }
    }

    /// Number of weights.
    pub fn num_weights(&self) -> usize {
        self.ps.num_weights()
    }

    /// Trainable parameters (for persistence via `alicoco_nn::persist`).
    pub fn params(&self) -> &ParamSet {
        &self.ps
    }

    fn emissions(
        &self,
        g: &mut Graph,
        res: &crate::resources::Resources,
        tokens: &[String],
    ) -> alicoco_nn::NodeId {
        let ids: Vec<usize> = tokens.iter().map(|t| res.vocab.get_or_unk(t)).collect();
        let e = self.emb.forward(g, &ids);
        let h = self.encoder.forward(g, e);
        self.proj.forward(g, h)
    }

    /// Train on distant-supervision data; returns per-epoch telemetry.
    pub fn train(
        &mut self,
        res: &crate::resources::Resources,
        data: &[TaggedSentence],
        rng: &mut impl Rng,
    ) -> Vec<EpochStats> {
        let mut opt = Adam::new(self.cfg.train.lr);
        let model = &*self;
        let trainer = Trainer::new(&model.ps, model.cfg.train.clone()).labeled("vocab_miner");
        trainer.train(
            &mut opt,
            data,
            |g, (tokens, labels)| {
                if tokens.is_empty() {
                    return None;
                }
                let em = model.emissions(g, res, tokens);
                Some(model.crf.nll(g, em, labels))
            },
            rng,
        )
    }

    /// Viterbi-decode a sentence into IOB labels.
    pub fn tag(&self, res: &crate::resources::Resources, tokens: &[String]) -> Vec<usize> {
        if tokens.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new();
        let em = self.emissions(&mut g, res, tokens);
        let em_t: Tensor = g.value(em).clone();
        self.crf.decode(&em_t)
    }
}

/// A mined candidate primitive concept.
#[derive(Clone, Debug, PartialEq)]
pub struct MinedCandidate {
    /// Surface.
    pub surface: String,
    /// Domain.
    pub domain: Domain,
    /// Count.
    pub count: usize,
}

/// Decode `sentences` and harvest spans whose surface the known lexicon does
/// not contain. Returns candidates sorted by frequency (desc).
pub fn mine_candidates(
    miner: &VocabMiner,
    res: &crate::resources::Resources,
    known: &KnownLexicon,
    sentences: &[Vec<String>],
) -> Vec<MinedCandidate> {
    let mut counts: FxHashMap<(String, Domain), usize> = FxHashMap::default();
    for s in sentences {
        if s.is_empty() {
            continue;
        }
        let labels = miner.tag(res, s);
        let mut i = 0;
        while i < s.len() {
            if is_begin(labels[i]) {
                let domain = label_domain(labels[i]).expect("begin label has domain");
                let mut j = i + 1;
                while j < s.len() && labels[j] == i_label(domain) {
                    j += 1;
                }
                let surface = s[i..j].join(" ");
                if !known.contains(&surface) {
                    *counts.entry((surface, domain)).or_insert(0) += 1;
                }
                i = j;
            } else {
                i += 1;
            }
        }
    }
    let mut out: Vec<MinedCandidate> = counts
        .into_iter()
        .map(|((surface, domain), count)| MinedCandidate {
            surface,
            domain,
            count,
        })
        .collect();
    out.sort_by(|a, b| b.count.cmp(&a.count).then(a.surface.cmp(&b.surface)));
    out
}

/// Outcome of one mining round (the §7.2 accounting: candidates found,
/// oracle-accepted, precision, and recall of the held-out vocabulary).
#[derive(Clone, Debug, Default)]
pub struct MiningReport {
    /// Candidates.
    pub candidates: usize,
    /// Accepted.
    pub accepted: usize,
    /// Precision.
    pub precision: f64,
    /// Fraction of held-out surfaces (that occur in the corpus) recovered.
    pub heldout_recall: f64,
}

/// Run oracle verification over candidates and score against the held-out
/// lexicon.
pub fn verify_candidates(
    candidates: &[MinedCandidate],
    oracle: &Oracle<'_>,
    heldout: &KnownLexicon,
    corpus_surfaces: &FxHashSet<String>,
) -> (Vec<MinedCandidate>, MiningReport) {
    let mut accepted = Vec::new();
    for c in candidates {
        if oracle.label_primitive(&c.surface, c.domain) {
            accepted.push(c.clone());
        }
    }
    let accepted_surfaces: FxHashSet<&str> = accepted.iter().map(|c| c.surface.as_str()).collect();
    let mut reachable = 0usize;
    let mut recovered = 0usize;
    for (surface, _) in heldout.iter() {
        if corpus_surfaces.contains(surface) {
            reachable += 1;
            if accepted_surfaces.contains(surface) {
                recovered += 1;
            }
        }
    }
    let report = MiningReport {
        candidates: candidates.len(),
        accepted: accepted.len(),
        precision: if candidates.is_empty() {
            0.0
        } else {
            accepted.len() as f64 / candidates.len() as f64
        },
        heldout_recall: if reachable == 0 {
            0.0
        } else {
            recovered as f64 / reachable as f64
        },
    };
    (accepted, report)
}

/// All surfaces (1–2 token spans) present in a corpus — used for recall
/// accounting.
pub fn corpus_surfaces(sentences: &[Vec<String>]) -> FxHashSet<String> {
    let mut out = FxHashSet::default();
    for s in sentences {
        for t in s {
            out.insert(t.clone());
        }
        for w in s.windows(2) {
            out.insert(w.join(" "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{Resources, ResourcesConfig};
    use alicoco_corpus::Dataset;

    #[test]
    fn label_space_roundtrip() {
        for d in Domain::ALL {
            assert!(is_begin(b_label(d)));
            assert!(!is_begin(i_label(d)));
            assert_eq!(label_domain(b_label(d)), Some(d));
            assert_eq!(label_domain(i_label(d)), Some(d));
        }
        assert_eq!(label_domain(0), None);
        assert!(!is_begin(0));
    }

    #[test]
    fn known_lexicon_split_partitions() {
        let ds = Dataset::tiny();
        let mut rng = alicoco_nn::util::seeded_rng(5);
        let (known, heldout) = KnownLexicon::sample(&ds, 0.7, &mut rng);
        assert!(!known.is_empty() && !heldout.is_empty());
        for (surface, domains) in heldout.iter() {
            for d in domains {
                assert!(
                    !known.domains_of(surface).contains(d),
                    "{surface} in both splits for {d:?}"
                );
            }
        }
    }

    #[test]
    fn distant_supervision_tags_known_terms() {
        let ds = Dataset::tiny();
        let mut rng = alicoco_nn::util::seeded_rng(6);
        let (known, _) = KnownLexicon::sample(&ds, 1.0, &mut rng);
        let sentences: Vec<Vec<String>> = vec![
            vec![
                "red".to_string(),
                "trench".to_string(),
                "coat".to_string(),
                "for".to_string(),
            ],
            // Contains an unknown content word -> imperfect match, dropped.
            vec!["red".to_string(), "zzz".to_string()],
        ];
        let data = distant_supervision(&known, &sentences, 10);
        assert_eq!(data.len(), 1);
        let (_, labels) = &data[0];
        assert_eq!(labels[0], b_label(Domain::Color));
        assert_eq!(labels[1], b_label(Domain::Category));
        assert_eq!(labels[2], i_label(Domain::Category));
        assert_eq!(labels[3], 0);
    }

    #[test]
    fn distant_supervision_drops_ambiguous() {
        let ds = Dataset::tiny();
        let mut rng = alicoco_nn::util::seeded_rng(7);
        let (known, _) = KnownLexicon::sample(&ds, 1.0, &mut rng);
        // "village" is Location and Style — ambiguous, sentence dropped.
        let sentences: Vec<Vec<String>> = vec![vec!["village".to_string(), "skirt".to_string()]];
        let data = distant_supervision(&known, &sentences, 10);
        assert!(data.is_empty());
    }

    /// End-to-end smoke: train on distant supervision, mine candidates, and
    /// check the oracle-verified report recovers held-out vocabulary.
    #[test]
    fn mining_recovers_heldout_terms() {
        let ds = Dataset::tiny();
        let res = Resources::build(
            &ds,
            ResourcesConfig {
                word_epochs: 3,
                ..Default::default()
            },
        );
        let mut rng = alicoco_nn::util::seeded_rng(8);
        let (known, heldout) = KnownLexicon::sample(&ds, 0.65, &mut rng);
        let sentences: Vec<Vec<String>> = ds.corpora.all_sentences().cloned().collect();
        let data = distant_supervision(&known, &sentences, 500);
        assert!(
            data.len() > 50,
            "too little distant supervision: {}",
            data.len()
        );
        let mut miner = VocabMiner::new(
            &res,
            VocabMinerConfig {
                train: TrainConfig::new(3, 0.01),
                ..Default::default()
            },
        );
        let losses = miner.train(&res, &data, &mut rng);
        assert!(
            losses.last().unwrap().mean_loss < losses.first().unwrap().mean_loss,
            "loss did not decrease: {losses:?}"
        );
        let candidates = mine_candidates(&miner, &res, &known, &sentences);
        assert!(!candidates.is_empty(), "no candidates mined");
        let oracle = Oracle::new(&ds.world);
        let surfaces = corpus_surfaces(&sentences);
        let (accepted, report) = verify_candidates(&candidates, &oracle, &heldout, &surfaces);
        assert!(!accepted.is_empty(), "oracle accepted nothing: {report:?}");
        assert!(report.precision > 0.2, "precision too low: {report:?}");
        assert!(report.heldout_recall > 0.1, "recall too low: {report:?}");
    }
}
