//! E-commerce concept tagging (§5.3, Table 5): linking concept words to
//! primitive-concept classes with a text-augmented deep NER model and a
//! fuzzy CRF.
//!
//! The three Table 5 rows map to switches: `Baseline` (BiLSTM + strict CRF),
//! `+Fuzzy CRF` (per-position allowed-label sets from lexicon ambiguity,
//! eq. 8), `+Fuzzy CRF & Knowledge` (gloss vectors and Doc2vec context
//! vectors concatenated into the token representation, Figure 6's TM
//! matrix).

use alicoco_corpus::{ConceptSpec, Dataset, Domain};
use alicoco_nn::attention::SelfAttention;
use alicoco_nn::conv::Conv1d;
use alicoco_nn::crf::Crf;
use alicoco_nn::layers::{Embedding, Linear};
use alicoco_nn::metrics::{prf_from_counts, PrF1};
use alicoco_nn::rnn::BiLstm;
use alicoco_nn::util::{FxHashMap, FxHashSet};
use alicoco_nn::{Adam, EpochStats, Graph, NodeId, ParamSet, Tensor, TrainConfig, Trainer};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::resources::Resources;
use crate::vocab_mining::{b_label, i_label, is_begin, label_domain, NUM_LABELS};

/// One labeled tagging example: tokens and gold IOB labels.
#[derive(Clone, Debug)]
pub struct TaggingExample {
    /// Tokens.
    pub tokens: Vec<String>,
    /// Labels.
    pub labels: Vec<usize>,
}

impl TaggingExample {
    /// Build from a ground-truth concept spec.
    pub fn from_spec(spec: &ConceptSpec) -> Self {
        let mut labels = vec![0usize; spec.tokens.len()];
        for s in &spec.slots {
            labels[s.start] = b_label(s.domain);
            for k in 1..s.len {
                labels[s.start + k] = i_label(s.domain);
            }
        }
        TaggingExample {
            tokens: spec.tokens.clone(),
            labels,
        }
    }
}

/// Extract `(start, len, domain)` spans from an IOB label sequence.
pub fn spans(labels: &[usize]) -> Vec<(usize, usize, Domain)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < labels.len() {
        if is_begin(labels[i]) {
            let d = label_domain(labels[i]).expect("begin label");
            let mut j = i + 1;
            while j < labels.len() && labels[j] == i_label(d) {
                j += 1;
            }
            out.push((i, j - i, d));
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Span-level precision/recall/F1 over a corpus of examples.
pub fn span_prf(golds: &[Vec<usize>], preds: &[Vec<usize>]) -> PrF1 {
    assert_eq!(golds.len(), preds.len());
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    for (g, p) in golds.iter().zip(preds) {
        let gs: FxHashSet<(usize, usize, Domain)> = spans(g).into_iter().collect();
        let ps: FxHashSet<(usize, usize, Domain)> = spans(p).into_iter().collect();
        tp += gs.intersection(&ps).count();
        fp += ps.difference(&gs).count();
        fn_ += gs.difference(&ps).count();
    }
    prf_from_counts(tp, fp, fn_)
}

/// Token → domains ambiguity index, built from the world lexicon; drives the
/// fuzzy CRF's allowed-label sets ("village" may be `Location` or `Style`).
#[derive(Clone, Debug, Default)]
pub struct AmbiguityIndex {
    domains: FxHashMap<String, Vec<Domain>>,
}

impl AmbiguityIndex {
    /// Build the structure.
    pub fn build(ds: &Dataset) -> Self {
        let mut domains: FxHashMap<String, Vec<Domain>> = FxHashMap::default();
        for (surface, d) in ds.world.lexicon.all_terms() {
            let e = domains.entry(surface.to_string()).or_default();
            if !e.contains(&d) {
                e.push(d);
            }
        }
        for id in ds.world.tree.ids() {
            for tok in ds.world.tree.name(id).split(' ') {
                let e = domains.entry(tok.to_string()).or_default();
                if !e.contains(&Domain::Category) {
                    e.push(Domain::Category);
                }
            }
        }
        AmbiguityIndex { domains }
    }

    /// Domains of.
    pub fn domains_of(&self, token: &str) -> &[Domain] {
        self.domains.get(token).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Allowed label sets for a gold-labeled example: the gold label always,
    /// plus alternative `B-` labels for ambiguous single-token spans.
    pub fn allowed_sets(&self, example: &TaggingExample) -> Vec<Vec<usize>> {
        let gold_spans = spans(&example.labels);
        let single: FxHashSet<usize> = gold_spans
            .iter()
            .filter(|(_, len, _)| *len == 1)
            .map(|(s, _, _)| *s)
            .collect();
        example
            .labels
            .iter()
            .enumerate()
            .map(|(t, &gold)| {
                let mut set = vec![gold];
                if single.contains(&t) {
                    for &d in self.domains_of(&example.tokens[t]) {
                        let alt = b_label(d);
                        if !set.contains(&alt) {
                            set.push(alt);
                        }
                    }
                }
                set
            })
            .collect()
    }
}

/// Ablation switches matching the Table 5 rows.
#[derive(Clone, Debug)]
pub struct TaggerConfig {
    /// Fuzzy CRF numerator (vs strict gold-path CRF).
    pub use_fuzzy: bool,
    /// Knowledge: gloss + context vectors in the token representation.
    pub use_knowledge: bool,
    /// Char-level CNN features (eq. 4-5); ablatable.
    pub use_char_cnn: bool,
    /// Char embedding dimension.
    pub char_dim: usize,
    /// Char channels.
    pub char_channels: usize,
    /// Hidden.
    pub hidden: usize,
    /// Attn embedding dimension.
    pub attn_dim: usize,
    /// POS embedding dimension.
    pub pos_dim: usize,
    /// Shared training-loop hyper-parameters.
    pub train: TrainConfig,
    /// Seed.
    pub seed: u64,
}

impl Default for TaggerConfig {
    fn default() -> Self {
        TaggerConfig {
            use_fuzzy: true,
            use_knowledge: true,
            use_char_cnn: true,
            char_dim: 10,
            char_channels: 12,
            hidden: 20,
            attn_dim: 24,
            pos_dim: 4,
            train: TrainConfig::new(8, 0.01),
            seed: 31,
        }
    }
}

impl TaggerConfig {
    /// Table 5 "Baseline": BiLSTM + strict CRF.
    pub fn baseline() -> Self {
        TaggerConfig {
            use_fuzzy: false,
            use_knowledge: false,
            ..Default::default()
        }
    }

    /// "+Fuzzy CRF".
    pub fn with_fuzzy() -> Self {
        TaggerConfig {
            use_fuzzy: true,
            use_knowledge: false,
            ..Default::default()
        }
    }

    /// "+Fuzzy CRF & Knowledge" (the full model).
    pub fn full() -> Self {
        TaggerConfig::default()
    }
}

/// Doc2vec context vectors per token (Figure 6's textual matrix `TM`):
/// each word is mapped back to corpus sentences and its surrounding context
/// is encoded once.
pub struct ContextIndex {
    vectors: FxHashMap<String, Vec<f32>>,
    dim: usize,
}

impl ContextIndex {
    /// Build context vectors for `words`, sampling up to `max_sentences`
    /// corpus sentences per word.
    pub fn build<'a>(
        res: &Resources,
        ds: &Dataset,
        words: impl IntoIterator<Item = &'a str>,
        max_sentences: usize,
    ) -> Self {
        let want: FxHashSet<&str> = words.into_iter().collect();
        let mut contexts: FxHashMap<&str, Vec<alicoco_text::TokenId>> = FxHashMap::default();
        for sent in ds.corpora.all_sentences() {
            for tok in sent {
                if let Some(w) = want.get(tok.as_str()) {
                    let e = contexts.entry(w).or_default();
                    // Cap the context document length.
                    if e.len() < max_sentences * 12 {
                        e.extend(res.vocab.encode(sent));
                    }
                }
            }
        }
        let dim = res.gloss_model.dim();
        let mut vectors = FxHashMap::default();
        for (w, doc) in contexts {
            vectors.insert(w.to_string(), res.gloss_model.infer(&doc));
        }
        ContextIndex { vectors, dim }
    }

    /// Vector.
    pub fn vector(&self, word: &str) -> Vec<f32> {
        self.vectors
            .get(word)
            .cloned()
            .unwrap_or_else(|| vec![0.0; self.dim])
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// The text-augmented NER tagger (Figure 6).
pub struct ConceptTagger {
    ps: ParamSet,
    char_emb: Embedding,
    char_cnn: Conv1d,
    word_emb: Embedding,
    pos_emb: Embedding,
    encoder: BiLstm,
    attn: SelfAttention,
    proj: Linear,
    crf: Crf,
    cfg: TaggerConfig,
    know_dim: usize,
}

impl ConceptTagger {
    /// Create a new instance.
    pub fn new(res: &Resources, cfg: TaggerConfig) -> Self {
        let mut rng = alicoco_nn::util::seeded_rng(cfg.seed);
        let mut ps = ParamSet::new();
        let char_emb = Embedding::new(&mut ps, "tag.char", res.chars.len(), cfg.char_dim, &mut rng);
        let char_cnn = Conv1d::new(
            &mut ps,
            "tag.charcnn",
            cfg.char_dim,
            cfg.char_channels,
            3,
            &mut rng,
        );
        let word_emb =
            Embedding::from_pretrained(&mut ps, "tag.word", res.word_vectors.vectors.clone());
        let pos_emb = Embedding::new(
            &mut ps,
            "tag.pos",
            alicoco_text::tagger::PosTag::COUNT,
            cfg.pos_dim,
            &mut rng,
        );
        let word_in = word_emb.dim()
            + if cfg.use_char_cnn {
                cfg.char_channels
            } else {
                0
            }
            + cfg.pos_dim;
        let encoder = BiLstm::new(&mut ps, "tag.bilstm", word_in, cfg.hidden, &mut rng);
        // Knowledge augmentation doubles gloss_dim (gloss vec + context vec).
        let know_dim = if cfg.use_knowledge {
            res.cfg.gloss_dim * 2
        } else {
            0
        };
        let attn = SelfAttention::new(
            &mut ps,
            "tag.attn",
            2 * cfg.hidden + know_dim,
            cfg.attn_dim,
            &mut rng,
        );
        let proj = Linear::new(&mut ps, "tag.proj", cfg.attn_dim, NUM_LABELS, &mut rng);
        let crf = Crf::new(&mut ps, "tag.crf", NUM_LABELS, &mut rng);
        ConceptTagger {
            ps,
            char_emb,
            char_cnn,
            word_emb,
            pos_emb,
            encoder,
            attn,
            proj,
            crf,
            cfg,
            know_dim,
        }
    }

    /// Number of weights.
    pub fn num_weights(&self) -> usize {
        self.ps.num_weights()
    }

    /// Trainable parameters (for persistence via `alicoco_nn::persist`).
    pub fn params(&self) -> &ParamSet {
        &self.ps
    }

    fn emissions(
        &self,
        g: &mut Graph,
        res: &Resources,
        ctx: &ContextIndex,
        tokens: &[String],
    ) -> NodeId {
        let word_ids: Vec<usize> = tokens.iter().map(|t| res.vocab.get_or_unk(t)).collect();
        let tok_refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
        let pos_ids = res.pos.tag_indices(&tok_refs);
        let we = self.word_emb.forward(g, &word_ids);
        let pe = self.pos_emb.forward(g, &pos_ids);
        let wcat = if self.cfg.use_char_cnn {
            // Per-word char CNN with max pooling (eq. 4-5).
            let mut char_feats: Vec<NodeId> = Vec::with_capacity(tokens.len());
            for t in tokens {
                let ids = res.word_char_ids(t);
                let ids = if ids.is_empty() {
                    vec![alicoco_text::UNK]
                } else {
                    ids
                };
                let ce = self.char_emb.forward(g, &ids);
                let conv = self.char_cnn.forward(g, ce);
                char_feats.push(g.max_rows(conv));
            }
            let chars = g.concat_rows(&char_feats);
            g.concat_cols(&[we, chars, pe]) // eq. 6
        } else {
            g.concat_cols(&[we, pe])
        };
        let h = self.encoder.forward(g, wcat);

        let enriched = if self.cfg.use_knowledge {
            let mut rows: Vec<f32> = Vec::with_capacity(tokens.len() * self.know_dim);
            for t in tokens {
                rows.extend(res.gloss_vector(t));
                rows.extend(ctx.vector(t));
            }
            let k = g.input(Tensor::from_vec(tokens.len(), self.know_dim, rows));
            g.concat_cols(&[h, k]) // eq. 7's [h_i ; tm_i]
        } else {
            h
        };
        let a = self.attn.forward(g, enriched);
        self.proj.forward(g, a)
    }

    /// Train; returns per-epoch telemetry.
    pub fn train(
        &mut self,
        res: &Resources,
        ctx: &ContextIndex,
        ambiguity: &AmbiguityIndex,
        data: &[TaggingExample],
        rng: &mut impl Rng,
    ) -> Vec<EpochStats> {
        let mut opt = Adam::new(self.cfg.train.lr);
        let model = &*self;
        let trainer = Trainer::new(&model.ps, model.cfg.train.clone()).labeled("concept_tagger");
        trainer.train(
            &mut opt,
            data,
            |g, ex: &TaggingExample| {
                if ex.tokens.is_empty() {
                    return None;
                }
                let em = model.emissions(g, res, ctx, &ex.tokens);
                Some(if model.cfg.use_fuzzy {
                    let allowed = ambiguity.allowed_sets(ex);
                    model.crf.fuzzy_nll(g, em, &allowed)
                } else {
                    model.crf.nll(g, em, &ex.labels)
                })
            },
            rng,
        )
    }

    /// Decode a concept into IOB labels.
    pub fn tag(&self, res: &Resources, ctx: &ContextIndex, tokens: &[String]) -> Vec<usize> {
        if tokens.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new();
        let em = self.emissions(&mut g, res, ctx, tokens);
        let em_t = g.value(em).clone();
        self.crf.decode(&em_t)
    }

    /// Span-level evaluation on examples.
    pub fn evaluate(&self, res: &Resources, ctx: &ContextIndex, data: &[TaggingExample]) -> PrF1 {
        let golds: Vec<Vec<usize>> = data.iter().map(|e| e.labels.clone()).collect();
        let preds: Vec<Vec<usize>> = data.iter().map(|e| self.tag(res, ctx, &e.tokens)).collect();
        span_prf(&golds, &preds)
    }
}

/// Distant-supervision augmentation (§7.5): automatically generate extra
/// labeled compound concepts from the known primitive layer. Examples whose
/// surface already appears in `ds.concepts` are skipped so the manually
/// labeled splits stay untouched.
pub fn distant_tagging_examples(ds: &Dataset, n: usize, seed: u64) -> Vec<TaggingExample> {
    let mut rng = alicoco_nn::util::seeded_rng(seed);
    let existing: FxHashSet<String> = ds.concepts.iter().map(|c| c.text()).collect();
    alicoco_corpus::generate_concepts(&ds.world, n, 0, &mut rng)
        .iter()
        .filter(|c| !c.slots.is_empty() && !existing.contains(&c.text()))
        .map(TaggingExample::from_spec)
        .collect()
}

/// Build the tagging dataset from ground-truth good concepts, split
/// train/val/test as in §7.5.
pub fn tagging_splits(
    ds: &Dataset,
    rng: &mut impl Rng,
) -> (
    Vec<TaggingExample>,
    Vec<TaggingExample>,
    Vec<TaggingExample>,
) {
    let mut all: Vec<TaggingExample> = ds
        .concepts
        .iter()
        .filter(|c| c.good && !c.slots.is_empty())
        .map(TaggingExample::from_spec)
        .collect();
    all.shuffle(rng);
    let n = all.len();
    let n_train = n * 2 / 3;
    let n_val = n / 6;
    let test = all.split_off(n_train + n_val);
    let val = all.split_off(n_train);
    (all, val, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourcesConfig;

    fn setup() -> (Dataset, Resources) {
        let ds = Dataset::tiny();
        let res = Resources::build(&ds, ResourcesConfig::default());
        (ds, res)
    }

    #[test]
    fn spans_extraction_handles_iob() {
        let labels = vec![
            b_label(Domain::Color),
            b_label(Domain::Category),
            i_label(Domain::Category),
            0,
            b_label(Domain::Event),
        ];
        let s = spans(&labels);
        assert_eq!(s.len(), 3);
        assert_eq!(s[1], (1, 2, Domain::Category));
        assert_eq!(s[2], (4, 1, Domain::Event));
    }

    #[test]
    fn span_prf_counts_exact_matches() {
        let gold = vec![vec![b_label(Domain::Color), b_label(Domain::Category)]];
        let pred = vec![vec![b_label(Domain::Color), b_label(Domain::Event)]];
        let m = span_prf(&gold, &pred);
        assert!((m.precision - 0.5).abs() < 1e-9);
        assert!((m.recall - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ambiguity_index_knows_village() {
        let (ds, _) = setup();
        let amb = AmbiguityIndex::build(&ds);
        let v = amb.domains_of("village");
        assert!(v.contains(&Domain::Style) && v.contains(&Domain::Location));
        assert!(amb.domains_of("qqq").is_empty());
    }

    #[test]
    fn allowed_sets_include_gold_and_alternatives() {
        let (ds, _) = setup();
        let amb = AmbiguityIndex::build(&ds);
        let ex = TaggingExample {
            tokens: vec!["village".into(), "skirt".into()],
            labels: vec![b_label(Domain::Style), b_label(Domain::Category)],
        };
        let sets = amb.allowed_sets(&ex);
        assert!(sets[0].contains(&b_label(Domain::Style)));
        assert!(
            sets[0].contains(&b_label(Domain::Location)),
            "fuzzy alternative missing"
        );
        assert!(sets[1].contains(&b_label(Domain::Category)));
    }

    #[test]
    fn context_index_builds_vectors_for_corpus_words() {
        let (ds, res) = setup();
        let ctx = ContextIndex::build(&res, &ds, ["barbecue", "grill"], 3);
        let v = ctx.vector("barbecue");
        assert_eq!(v.len(), ctx.dim());
        assert!(
            v.iter().any(|&x| x != 0.0),
            "no context vector for barbecue"
        );
        assert!(ctx.vector("zzz-unknown").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn tagger_learns_to_tag_concepts() {
        let (ds, res) = setup();
        let mut rng = alicoco_nn::util::seeded_rng(17);
        let (mut train, _val, test) = tagging_splits(&ds, &mut rng);
        assert!(
            train.len() > 40,
            "too few tagging examples: {}",
            train.len()
        );
        // §7.5: distant supervision enlarges the training set.
        train.extend(distant_tagging_examples(&ds, 300, 9999));
        let words: FxHashSet<String> = train
            .iter()
            .chain(test.iter())
            .flat_map(|e| e.tokens.iter().cloned())
            .collect();
        let ctx = ContextIndex::build(&res, &ds, words.iter().map(String::as_str), 3);
        let amb = AmbiguityIndex::build(&ds);
        let mut model = ConceptTagger::new(
            &res,
            TaggerConfig {
                train: TrainConfig::new(2, 0.01),
                ..TaggerConfig::full()
            },
        );
        let losses = model.train(&res, &ctx, &amb, &train, &mut rng);
        assert!(
            losses.last().unwrap().mean_loss < losses.first().unwrap().mean_loss,
            "loss not decreasing: {losses:?}"
        );
        let m = model.evaluate(&res, &ctx, &test);
        assert!(m.f1 > 0.8, "tagging F1 too low: {m:?}");
    }

    #[test]
    fn ablation_configs_differ() {
        let (_, res) = setup();
        let base = ConceptTagger::new(&res, TaggerConfig::baseline());
        let full = ConceptTagger::new(&res, TaggerConfig::full());
        assert!(full.num_weights() > base.num_weights());
    }
}
