#![warn(missing_docs)]
//! # alicoco-mining
//!
//! The semi-automatic construction pipeline of AliCoCo — the five machine
//! learning modules of §4–§6 plus the end-to-end builder:
//!
//! - [`resources`] — shared pre-trained assets (word2vec, doc2vec glosses,
//!   n-gram LM, POS/NER taggers) built once per dataset,
//! - [`vocab_mining`] — §4.1: distant supervision + BiLSTM-CRF primitive
//!   mining with the oracle acceptance gate,
//! - [`hypernym`] — §4.2: Hearst/head-word patterns, bilinear projection
//!   learning, and the UCS active-learning loop of Algorithm 1,
//! - [`congen`] — §5.2: concept candidate generation (phrase mining +
//!   pattern combination) and the knowledge-enhanced Wide&Deep classifier,
//! - [`tagging`] — §5.3: text-augmented NER with the fuzzy CRF,
//! - [`matching`] — §6: the knowledge-aware deep semantic matcher and the
//!   BM25 / DSSM / MatchPyramid / RE2 baselines of Table 6,
//! - [`relations`] — §2: instance-level schema-relation mining
//!   (`suitable_when`, `happens_in`),
//! - [`pipeline`] — wires everything into an [`alicoco::AliCoCo`] instance.

pub mod congen;
pub mod hypernym;
pub mod matching;
pub mod pipeline;
pub mod relations;
pub mod resources;
pub mod tagging;
pub mod vocab_mining;
