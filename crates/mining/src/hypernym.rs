//! Hypernym discovery (§4.2): pattern-based extraction, projection
//! learning, and the UCS active-learning loop of Algorithm 1.
//!
//! Reproduces Table 3 (labeled size per sampling strategy, MRR/MAP/P@1) and
//! both panels of Figure 9 (negative-sample-ratio sweep; best MAP per
//! strategy).

use alicoco_corpus::{Dataset, Oracle};
use alicoco_nn::layers::Linear;
use alicoco_nn::metrics::{ranking_metrics, RankingMetrics};
use alicoco_nn::param::Param;
use alicoco_nn::util::{FxHashMap, FxHashSet};
use alicoco_nn::{Adam, EpochStats, Graph, NodeId, ParamSet, Tensor, TrainConfig, Trainer};
use alicoco_text::hearst;
use rand::seq::SliceRandom;
use rand::Rng;

// ---------------------------------------------------------------------------
// Pattern-based discovery (§4.2.1)
// ---------------------------------------------------------------------------

/// Extract hypernym pairs from the shopping-guide corpus using Hearst
/// patterns plus the head-word rule, resolved against known surfaces.
/// Returns `(hyponym, hypernym)` surface pairs (space-joined names).
pub fn pattern_based_pairs(ds: &Dataset) -> Vec<(String, String)> {
    let refs: Vec<&[String]> = ds.corpora.guides.iter().map(|s| s.as_slice()).collect();
    let mut out: Vec<(String, String)> = Vec::new();
    let mut seen: FxHashSet<(String, String)> = FxHashSet::default();
    let normalize = |s: &str| -> Option<String> {
        if ds.world.category(s).is_some() {
            Some(s.to_string())
        } else {
            let sp = s.replace('-', " ");
            ds.world.category(&sp).map(|_| sp)
        }
    };
    for p in hearst::extract_from_corpus(refs.iter().copied()) {
        if let (Some(c), Some(h)) = (normalize(&p.hyponym), normalize(&p.hypernym)) {
            if c != h && seen.insert((c.clone(), h.clone())) {
                out.push((c, h));
            }
        }
    }
    // Head-word rule over all category names ("alpine-jacket" isA "jacket").
    let heads: FxHashSet<String> = ds
        .world
        .tree
        .ids()
        .map(|i| ds.world.tree.name(i).to_string())
        .collect();
    let names: Vec<String> = ds
        .world
        .tree
        .ids()
        .map(|i| ds.world.tree.name(i).to_string())
        .collect();
    for p in hearst::head_word_pairs(names.iter().map(String::as_str), &heads) {
        let pair = (p.hyponym.clone(), p.hypernym.clone());
        if seen.insert(pair.clone()) {
            out.push(pair);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Dataset (§7.3 protocol)
// ---------------------------------------------------------------------------

/// The hypernym-discovery dataset over Category primitives: term surfaces,
/// embeddings, positive ancestor pairs, and a hyponym-level train/val/test
/// split (7:2:1 as in the paper).
pub struct HypernymDataset {
    /// Terms.
    pub terms: Vec<String>,
    /// Mean-of-word-vectors embedding per term.
    pub vecs: Vec<Vec<f32>>,
    positives: FxHashSet<(usize, usize)>,
    /// Hyponym indices per split.
    pub train_hypos: Vec<usize>,
    /// Val hypos.
    pub val_hypos: Vec<usize>,
    /// Test hypos.
    pub test_hypos: Vec<usize>,
    /// Positive pairs per split.
    pub train_pos: Vec<(usize, usize)>,
    /// Val POS.
    pub val_pos: Vec<(usize, usize)>,
    /// Test POS.
    pub test_pos: Vec<(usize, usize)>,
}

impl HypernymDataset {
    /// Build from the world's category tree, embedding terms with the
    /// shared word vectors.
    pub fn build(ds: &Dataset, res: &crate::resources::Resources, rng: &mut impl Rng) -> Self {
        let tree = &ds.world.tree;
        let ids: Vec<usize> = tree.ids().filter(|&i| i != 0).collect();
        let terms: Vec<String> = ids.iter().map(|&i| tree.name(i).to_string()).collect();
        let index_of: FxHashMap<usize, usize> =
            ids.iter().enumerate().map(|(k, &i)| (i, k)).collect();
        let dim = res.word_vectors.dim();
        let vecs: Vec<Vec<f32>> = terms
            .iter()
            .map(|t| {
                let mut v = vec![0.0f32; dim];
                let mut n = 0;
                for tok in t.split(&[' ', '-'][..]) {
                    if let Some(id) = res.vocab.get(tok) {
                        for (a, b) in v.iter_mut().zip(res.word_vectors.vector(id)) {
                            *a += b;
                        }
                        n += 1;
                    }
                }
                if n > 0 {
                    v.iter_mut().for_each(|x| *x /= n as f32);
                }
                v
            })
            .collect();

        // Positives: ancestor closure (excluding the virtual root).
        let mut positives = FxHashSet::default();
        let mut by_hypo: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
        for &id in &ids {
            for anc in tree.ancestors(id) {
                if anc == 0 {
                    continue;
                }
                let pair = (index_of[&id], index_of[&anc]);
                positives.insert(pair);
                by_hypo.entry(pair.0).or_default().push(pair.1);
            }
        }
        // Split hyponyms 7:2:1.
        let mut hypos: Vec<usize> = by_hypo.keys().copied().collect();
        hypos.sort_unstable();
        hypos.shuffle(rng);
        let n = hypos.len();
        let n_train = n * 7 / 10;
        let n_val = n * 2 / 10;
        let train_hypos = hypos[..n_train].to_vec();
        let val_hypos = hypos[n_train..n_train + n_val].to_vec();
        let test_hypos = hypos[n_train + n_val..].to_vec();
        let pairs_of = |hs: &[usize]| -> Vec<(usize, usize)> {
            let mut v: Vec<(usize, usize)> = hs
                .iter()
                .flat_map(|h| by_hypo[h].iter().map(move |&a| (*h, a)))
                .collect();
            v.sort_unstable();
            v
        };
        let train_pos = pairs_of(&train_hypos);
        let val_pos = pairs_of(&val_hypos);
        let test_pos = pairs_of(&test_hypos);
        HypernymDataset {
            terms,
            vecs,
            positives,
            train_hypos,
            val_hypos,
            test_hypos,
            train_pos,
            val_pos,
            test_pos,
        }
    }

    /// Is positive.
    pub fn is_positive(&self, hypo: usize, hyper: usize) -> bool {
        self.positives.contains(&(hypo, hyper))
    }

    /// Labeled training pairs with `ratio` negatives per positive, negatives
    /// formed by replacing the hypernym with a random term (the §7.3
    /// protocol).
    pub fn labeled_pairs(
        &self,
        positives: &[(usize, usize)],
        ratio: usize,
        rng: &mut impl Rng,
    ) -> Vec<(usize, usize, f32)> {
        let mut out = Vec::with_capacity(positives.len() * (1 + ratio));
        for &(h, a) in positives {
            out.push((h, a, 1.0));
            let mut added = 0;
            let mut guard = 0;
            while added < ratio && guard < ratio * 20 {
                guard += 1;
                let cand = rng.gen_range(0..self.terms.len());
                if cand != h && !self.is_positive(h, cand) {
                    out.push((h, cand, 0.0));
                    added += 1;
                }
            }
        }
        out.shuffle(rng);
        out
    }

    /// Ranking queries for evaluation: for each hyponym in `positives`, its
    /// true hypernyms plus `negatives` random non-hypernyms.
    pub fn ranking_queries(
        &self,
        positives: &[(usize, usize)],
        negatives: usize,
        rng: &mut impl Rng,
    ) -> Vec<(usize, Vec<(usize, bool)>)> {
        let mut by_hypo: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
        for &(h, a) in positives {
            by_hypo.entry(h).or_default().push(a);
        }
        let mut hypos: Vec<usize> = by_hypo.keys().copied().collect();
        hypos.sort_unstable();
        let mut out = Vec::with_capacity(hypos.len());
        for h in hypos {
            let mut cands: Vec<(usize, bool)> = by_hypo[&h].iter().map(|&a| (a, true)).collect();
            let mut added = 0;
            let mut guard = 0;
            while added < negatives && guard < negatives * 20 {
                guard += 1;
                let cand = rng.gen_range(0..self.terms.len());
                if cand != h && !self.is_positive(h, cand) {
                    cands.push((cand, false));
                    added += 1;
                }
            }
            out.push((h, cands));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Projection learning (§4.2.2, eq. 1–2)
// ---------------------------------------------------------------------------

/// Configuration for the projection model.
#[derive(Clone, Debug)]
pub struct ProjectionConfig {
    /// Number of bilinear projection layers `K`.
    pub k: usize,
    /// Shared training-loop hyper-parameters.
    pub train: TrainConfig,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for ProjectionConfig {
    fn default() -> Self {
        ProjectionConfig {
            k: 4,
            train: TrainConfig::new(6, 0.02),
            seed: 99,
        }
    }
}

/// The bilinear projection scorer: `s_k = p^T T_k h`, `y = σ(W s + b)`.
pub struct ProjectionModel {
    ps: ParamSet,
    tensors: Vec<Param>,
    out: Linear,
    cfg: ProjectionConfig,
    dim: usize,
}

impl ProjectionModel {
    /// Create a new instance.
    pub fn new(dim: usize, cfg: ProjectionConfig) -> Self {
        let mut rng = alicoco_nn::util::seeded_rng(cfg.seed);
        let mut ps = ParamSet::new();
        let tensors = (0..cfg.k)
            .map(|k| ps.add(format!("proj.t{k}"), Tensor::xavier(dim, dim, &mut rng)))
            .collect();
        let out = Linear::new(&mut ps, "proj.out", cfg.k, 1, &mut rng);
        ProjectionModel {
            ps,
            tensors,
            out,
            cfg,
            dim,
        }
    }

    /// Trainable parameters (for persistence via `alicoco_nn::persist`).
    pub fn params(&self) -> &ParamSet {
        &self.ps
    }

    fn logit(&self, g: &mut Graph, p: &[f32], h: &[f32]) -> NodeId {
        let pn = g.input(Tensor::row(p.to_vec()));
        let hn = g.input(Tensor::row(h.to_vec()));
        let ht = g.transpose(hn);
        let scores: Vec<NodeId> = self
            .tensors
            .iter()
            .map(|t| {
                let tk = g.param(t);
                let pt = g.matmul(pn, tk);
                g.matmul(pt, ht)
            })
            .collect();
        let s = g.concat_cols(&scores);
        self.out.forward(g, s)
    }

    /// Probability that `h` is a hypernym of `p`.
    pub fn score(&self, p: &[f32], h: &[f32]) -> f32 {
        assert_eq!(p.len(), self.dim);
        let mut g = Graph::new();
        let l = self.logit(&mut g, p, h);
        1.0 / (1.0 + (-g.value(l).item()).exp())
    }

    /// Train on labeled `(hypo, hyper, label)` triples over `data.vecs`;
    /// returns per-epoch telemetry.
    pub fn train(
        &mut self,
        data: &HypernymDataset,
        triples: &[(usize, usize, f32)],
        rng: &mut impl Rng,
    ) -> Vec<EpochStats> {
        let mut opt = Adam::new(self.cfg.train.lr);
        let model = &*self;
        let trainer =
            Trainer::new(&model.ps, model.cfg.train.clone()).labeled("hypernym_projection");
        trainer.train(
            &mut opt,
            triples,
            |g, &(p, h, y)| {
                let l = model.logit(g, &data.vecs[p], &data.vecs[h]);
                Some(g.bce_with_logits(l, &[y]))
            },
            rng,
        )
    }

    /// Evaluate ranking metrics over queries.
    pub fn evaluate(
        &self,
        data: &HypernymDataset,
        queries: &[(usize, Vec<(usize, bool)>)],
    ) -> RankingMetrics {
        let scored: Vec<Vec<(f32, bool)>> = queries
            .iter()
            .map(|(h, cands)| {
                cands
                    .iter()
                    .map(|&(a, y)| (self.score(&data.vecs[*h], &data.vecs[a]), y))
                    .collect()
            })
            .collect();
        ranking_metrics(&scored)
    }
}

// ---------------------------------------------------------------------------
// Active learning (§4.2.3, Algorithm 1)
// ---------------------------------------------------------------------------

/// Sampling strategies compared in Table 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Strategy {
    /// Label the whole pool in random order (no active learning).
    Random,
    /// Uncertainty sampling: scores closest to 0.5.
    Us,
    /// Confidence sampling: scores farthest from 0.5.
    Cs,
    /// Uncertainty + high-confidence mix with weight `alpha` on confidence.
    Ucs {
        /// Share of each batch taken from the high-confidence end.
        alpha: f64,
    },
}

impl Strategy {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Random => "Random",
            Strategy::Us => "US",
            Strategy::Cs => "CS",
            Strategy::Ucs { .. } => "UCS",
        }
    }
}

/// Configuration of the active-learning run.
#[derive(Clone, Debug)]
pub struct ActiveLearningConfig {
    /// Strategy.
    pub strategy: Strategy,
    /// Samples labeled per iteration (`K` in Algorithm 1).
    pub k_per_round: usize,
    /// Stop when validation MAP has not improved for this many rounds.
    pub patience: usize,
    /// Max rounds.
    pub max_rounds: usize,
    /// Negatives per positive when building the unlabeled pool.
    pub pool_negative_ratio: usize,
    /// Projection.
    pub projection: ProjectionConfig,
    /// Seed for pool shuffling and negatives.
    pub seed: u64,
}

impl Default for ActiveLearningConfig {
    fn default() -> Self {
        ActiveLearningConfig {
            strategy: Strategy::Ucs { alpha: 0.5 },
            k_per_round: 400,
            patience: 2,
            max_rounds: 12,
            pool_negative_ratio: 8,
            projection: ProjectionConfig::default(),
            seed: 555,
        }
    }
}

/// Outcome of an active-learning run (one Table 3 row).
#[derive(Clone, Debug)]
pub struct ActiveLearningOutcome {
    /// Strategy.
    pub strategy: &'static str,
    /// Oracle labels consumed.
    pub labeled: u64,
    /// `(labels used, validation MAP)` after each round.
    pub history: Vec<(u64, f64)>,
    /// Best val map.
    pub best_val_map: f64,
    /// Test metrics of the final model.
    pub test: RankingMetrics,
}

/// Run Algorithm 1 with the given strategy.
pub fn run_active_learning(
    data: &HypernymDataset,
    oracle: &Oracle<'_>,
    cfg: &ActiveLearningConfig,
) -> ActiveLearningOutcome {
    let mut rng = alicoco_nn::util::seeded_rng(cfg.seed);
    oracle.reset_counter();

    // Build the unlabeled pool: every training positive plus random
    // negatives, unlabeled (the oracle will label them on demand).
    let mut pool: Vec<(usize, usize)> = Vec::new();
    for &(h, a) in &data.train_pos {
        pool.push((h, a));
        for _ in 0..cfg.pool_negative_ratio {
            let cand = rng.gen_range(0..data.terms.len());
            if cand != h {
                pool.push((h, cand));
            }
        }
    }
    pool.shuffle(&mut rng);

    let val_queries = data.ranking_queries(&data.val_pos, 30, &mut rng);
    let test_queries = data.ranking_queries(&data.test_pos, 30, &mut rng);

    let mut labeled: Vec<(usize, usize, f32)> = Vec::new();
    let mut history = Vec::new();
    let mut best_map = f64::NEG_INFINITY;
    let mut stale = 0usize;
    let mut model = ProjectionModel::new(data.vecs[0].len(), cfg.projection.clone());

    let label_batch = |batch: Vec<(usize, usize)>,
                       labeled: &mut Vec<(usize, usize, f32)>,
                       oracle: &Oracle<'_>| {
        for (h, a) in batch {
            let y = oracle.label_hypernym(&data.terms[h], &data.terms[a]);
            labeled.push((h, a, if y { 1.0 } else { 0.0 }));
        }
    };

    // Round 0: random K.
    let first: Vec<(usize, usize)> = pool.drain(..cfg.k_per_round.min(pool.len())).collect();
    label_batch(first, &mut labeled, oracle);

    for _round in 0..cfg.max_rounds {
        model = ProjectionModel::new(data.vecs[0].len(), cfg.projection.clone());
        model.train(data, &labeled, &mut rng);
        let val = model.evaluate(data, &val_queries);
        history.push((oracle.labels_used(), val.map));
        if val.map > best_map + 1e-4 {
            best_map = val.map;
            stale = 0;
        } else {
            stale += 1;
            if stale >= cfg.patience {
                break;
            }
        }
        if pool.is_empty() {
            break;
        }
        // Score the pool and select the next batch by strategy.
        let k = cfg.k_per_round.min(pool.len());
        let batch: Vec<(usize, usize)> = match cfg.strategy {
            Strategy::Random => pool.drain(..k).collect(),
            _ => {
                // Certainty p_i = |S_i - 0.5| / 0.5.
                let mut scored: Vec<(usize, f64)> = pool
                    .iter()
                    .enumerate()
                    .map(|(i, &(h, a))| {
                        let s = model.score(&data.vecs[h], &data.vecs[a]) as f64;
                        (i, (s - 0.5).abs() / 0.5)
                    })
                    .collect();
                scored.sort_by(alicoco::rank::by_score_then_id);
                let take: Vec<usize> = match cfg.strategy {
                    Strategy::Cs => scored[..k].iter().map(|&(i, _)| i).collect(),
                    Strategy::Us => scored[scored.len() - k..].iter().map(|&(i, _)| i).collect(),
                    Strategy::Ucs { alpha } => {
                        let n_conf = ((k as f64) * alpha).round() as usize;
                        let n_unc = k - n_conf;
                        let mut v: Vec<usize> = scored[..n_conf].iter().map(|&(i, _)| i).collect();
                        v.extend(scored[scored.len() - n_unc..].iter().map(|&(i, _)| i));
                        v
                    }
                    Strategy::Random => unreachable!(),
                };
                let mut take_sorted = take;
                take_sorted.sort_unstable_by(|a, b| b.cmp(a));
                take_sorted
                    .into_iter()
                    .map(|i| pool.swap_remove(i))
                    .collect()
            }
        };
        label_batch(batch, &mut labeled, oracle);
    }

    let test = model.evaluate(data, &test_queries);
    ActiveLearningOutcome {
        strategy: cfg.strategy.name(),
        labeled: oracle.labels_used(),
        history,
        best_val_map: best_map.max(0.0),
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{Resources, ResourcesConfig};

    fn setup() -> (Dataset, Resources, HypernymDataset) {
        let ds = Dataset::tiny();
        let res = Resources::build(
            &ds,
            ResourcesConfig {
                word_epochs: 3,
                ..Default::default()
            },
        );
        let mut rng = alicoco_nn::util::seeded_rng(21);
        let data = HypernymDataset::build(&ds, &res, &mut rng);
        (ds, res, data)
    }

    #[test]
    fn pattern_pairs_are_high_precision() {
        let ds = Dataset::tiny();
        let pairs = pattern_based_pairs(&ds);
        assert!(pairs.len() > 30, "only {} pattern pairs", pairs.len());
        let correct = pairs
            .iter()
            .filter(|(c, h)| {
                let ci = ds.world.category(c).unwrap();
                let hi = ds.world.category(h).unwrap();
                ds.world.tree.is_ancestor(hi, ci)
            })
            .count();
        assert!(
            correct as f64 / pairs.len() as f64 > 0.9,
            "pattern precision {correct}/{}",
            pairs.len()
        );
    }

    #[test]
    fn dataset_split_is_disjoint_and_positive_pairs_match_tree() {
        let (ds, _, data) = setup();
        let all: FxHashSet<usize> = data
            .train_hypos
            .iter()
            .chain(&data.val_hypos)
            .chain(&data.test_hypos)
            .copied()
            .collect();
        assert_eq!(
            all.len(),
            data.train_hypos.len() + data.val_hypos.len() + data.test_hypos.len(),
            "splits overlap"
        );
        for &(h, a) in data.train_pos.iter().take(50) {
            let hi = ds.world.category(&data.terms[h]).unwrap();
            let ai = ds.world.category(&data.terms[a]).unwrap();
            assert!(ds.world.tree.is_ancestor(ai, hi));
        }
    }

    #[test]
    fn projection_model_learns_to_rank() {
        let (_, _, data) = setup();
        let mut rng = alicoco_nn::util::seeded_rng(31);
        let triples = data.labeled_pairs(&data.train_pos, 6, &mut rng);
        let mut model = ProjectionModel::new(
            data.vecs[0].len(),
            ProjectionConfig {
                train: ProjectionConfig::default().train.with_epochs(4),
                ..Default::default()
            },
        );
        model.train(&data, &triples, &mut rng);
        let queries = data.ranking_queries(&data.test_pos, 20, &mut rng);
        let m = model.evaluate(&data, &queries);
        // Random ranking over ~20 negatives + ~3 positives would give
        // MAP ~0.15; the trained model must beat that clearly.
        assert!(m.map > 0.3, "MAP too low: {m:?}");
    }

    #[test]
    fn ucs_uses_fewer_labels_than_random_for_similar_map() {
        let (ds, _, data) = setup();
        let oracle = Oracle::new(&ds.world);
        let base = ActiveLearningConfig {
            k_per_round: 150,
            max_rounds: 6,
            patience: 2,
            pool_negative_ratio: 5,
            projection: ProjectionConfig {
                train: ProjectionConfig::default().train.with_epochs(3),
                ..Default::default()
            },
            ..Default::default()
        };
        let random = run_active_learning(
            &data,
            &oracle,
            &ActiveLearningConfig {
                strategy: Strategy::Random,
                ..base.clone()
            },
        );
        let ucs = run_active_learning(
            &data,
            &oracle,
            &ActiveLearningConfig {
                strategy: Strategy::Ucs { alpha: 0.5 },
                ..base.clone()
            },
        );
        assert!(
            random.best_val_map > 0.2,
            "random arm degenerate: {random:?}"
        );
        assert!(ucs.best_val_map > 0.2, "ucs arm degenerate: {ucs:?}");
        // The Table 3 claim (UCS saves labels at equal MAP) is measured by
        // the experiments harness over full runs; here we assert the
        // mechanics: labels are consumed monotonically and every label is
        // accounted to the oracle.
        for w in ucs.history.windows(2) {
            assert!(
                w[1].0 >= w[0].0,
                "label count went backwards: {:?}",
                ucs.history
            );
        }
        assert!(ucs.labeled >= base.k_per_round as u64);
        assert!(!ucs.history.is_empty());
    }

    #[test]
    fn ranking_queries_contain_all_positives() {
        let (_, _, data) = setup();
        let mut rng = alicoco_nn::util::seeded_rng(41);
        let queries = data.ranking_queries(&data.test_pos, 10, &mut rng);
        for (h, cands) in &queries {
            let pos = cands.iter().filter(|(_, y)| *y).count();
            assert!(pos >= 1);
            for &(a, y) in cands {
                assert_eq!(data.is_positive(*h, a), y);
            }
        }
    }
}
