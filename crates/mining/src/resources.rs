//! Shared, pre-trained resources consumed by the five pipeline models.
//!
//! The paper assumes a stack of pre-trained assets: word embeddings trained
//! on e-commerce corpora, Doc2vec gloss encoders, a POS tagger, an NER
//! tagger, and a fluency model. [`Resources::build`] trains all of them once
//! from the synthetic [`alicoco_corpus::Dataset`] so individual models can
//! share them.

use alicoco_corpus::{Dataset, Domain};
use alicoco_nn::util::FxHashMap;
use alicoco_text::doc2vec::{Doc2Vec, Doc2VecConfig};
use alicoco_text::lm::NgramLm;
use alicoco_text::tagger::{NerTagger, PosTagger};
use alicoco_text::vocab::{TokenId, Vocab};
use alicoco_text::word2vec::{train as w2v_train, Word2VecConfig, WordVectors};

/// Sizing knobs for resource training.
#[derive(Clone, Debug)]
pub struct ResourcesConfig {
    /// Word embedding dimension.
    pub word_dim: usize,
    /// Word epochs.
    pub word_epochs: usize,
    /// Gloss embedding dimension.
    pub gloss_dim: usize,
    /// Gloss epochs.
    pub gloss_epochs: usize,
    /// Min count.
    pub min_count: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for ResourcesConfig {
    fn default() -> Self {
        ResourcesConfig {
            word_dim: 24,
            word_epochs: 4,
            gloss_dim: 16,
            gloss_epochs: 8,
            min_count: 1,
            seed: 1234,
        }
    }
}

/// Everything the models share.
pub struct Resources {
    /// Configuration.
    pub cfg: ResourcesConfig,
    /// Word-level vocabulary over all corpora.
    pub vocab: Vocab,
    /// Character vocabulary.
    pub chars: Vocab,
    /// Pre-trained SGNS word vectors aligned with `vocab`.
    pub word_vectors: WordVectors,
    /// Lexicon POS tagger.
    pub pos: PosTagger,
    /// Lexicon NER tagger over the 20 domains (label = domain index + 1).
    pub ner: NerTagger,
    /// Trigram LM for perplexity features (BERT substitute).
    pub lm: NgramLm,
    /// Doc2vec model trained over gloss documents.
    pub gloss_model: Doc2Vec,
    /// Precomputed gloss vector per known surface form (mean-centered to
    /// remove the anisotropy PV-DBOW exhibits at small scale).
    gloss_vectors: FxHashMap<String, Vec<f32>>,
    /// TF-IDF sparse vector per gloss, for lexical-overlap similarity.
    gloss_tfidf: FxHashMap<String, FxHashMap<TokenId, f32>>,
    /// Per-word popularity (corpus frequency, log-scaled).
    popularity: FxHashMap<String, f32>,
}

impl Resources {
    /// Train all shared resources from a dataset.
    pub fn build(ds: &Dataset, cfg: ResourcesConfig) -> Self {
        // Vocabulary over corpora + concept tokens (so candidate concepts
        // are never all-UNK).
        let concept_sents: Vec<Vec<String>> =
            ds.concepts.iter().map(|c| c.tokens.clone()).collect();
        let all_refs: Vec<&[String]> = ds
            .corpora
            .all_sentences()
            .map(|s| s.as_slice())
            .chain(concept_sents.iter().map(|s| s.as_slice()))
            .collect();
        let vocab = Vocab::from_corpus(all_refs.iter().copied(), cfg.min_count);

        let mut chars = Vocab::new();
        for (_, tok, _) in vocab.iter() {
            for ch in tok.chars() {
                chars.add(&ch.to_string());
            }
        }

        let encoded: Vec<Vec<TokenId>> = all_refs.iter().map(|s| vocab.encode(s)).collect();
        let w2v_cfg = Word2VecConfig {
            dim: cfg.word_dim,
            epochs: cfg.word_epochs,
            seed: cfg.seed,
            ..Default::default()
        };
        let word_vectors = w2v_train(&vocab, &encoded, &w2v_cfg);

        let lm = NgramLm::train(&encoded, vocab.len());

        // Taggers from the world lexicons (simulating off-the-shelf tools).
        let pos = PosTagger::new();
        let mut ner = NerTagger::new(20);
        for (surface, domain) in ds.world.lexicon.all_terms() {
            ner.insert(surface, domain.index() + 1);
        }
        for id in ds.world.tree.ids() {
            // Multi-token category names tag each token.
            for tok in ds.world.tree.name(id).split(' ') {
                ner.insert(tok, Domain::Category.index() + 1);
            }
        }

        // Gloss encoder.
        let mut gloss_surfaces: Vec<String> = Vec::new();
        let mut gloss_docs: Vec<Vec<TokenId>> = Vec::new();
        for (surface, gloss) in ds.glosses.iter() {
            gloss_surfaces.push(surface.to_string());
            gloss_docs.push(vocab.encode(gloss));
        }
        let d2v_cfg = Doc2VecConfig {
            dim: cfg.gloss_dim,
            epochs: cfg.gloss_epochs,
            seed: cfg.seed ^ 0xd2c,
            ..Default::default()
        };
        let gloss_model = Doc2Vec::train(&vocab, &gloss_docs, &d2v_cfg);
        // Mean-center the doc vectors: small PV-DBOW models collapse toward
        // one dominant direction, which destroys cosine contrast.
        let n_glosses = gloss_surfaces.len().max(1);
        let mut mean = vec![0.0f32; cfg.gloss_dim];
        for i in 0..gloss_surfaces.len() {
            for (m, v) in mean.iter_mut().zip(gloss_model.doc_vector(i)) {
                *m += v / n_glosses as f32;
            }
        }
        let mut gloss_vectors = FxHashMap::default();
        for (i, s) in gloss_surfaces.iter().enumerate() {
            let centered: Vec<f32> = gloss_model
                .doc_vector(i)
                .iter()
                .zip(&mean)
                .map(|(v, m)| v - m)
                .collect();
            gloss_vectors.insert(s.clone(), centered);
        }

        // TF-IDF sparse gloss vectors for lexical-overlap similarity.
        let mut df: FxHashMap<TokenId, u32> = FxHashMap::default();
        for doc in &gloss_docs {
            let uniq: std::collections::BTreeSet<TokenId> = doc.iter().copied().collect();
            for t in uniq {
                *df.entry(t).or_insert(0) += 1;
            }
        }
        let mut gloss_tfidf = FxHashMap::default();
        for (s, doc) in gloss_surfaces.iter().zip(&gloss_docs) {
            let mut tf: FxHashMap<TokenId, f32> = FxHashMap::default();
            for &t in doc {
                *tf.entry(t).or_insert(0.0) += 1.0;
            }
            for (t, v) in tf.iter_mut() {
                let idf = (n_glosses as f32 / (1.0 + df[t] as f32)).ln().max(0.0);
                *v *= idf;
            }
            gloss_tfidf.insert(s.clone(), tf);
        }

        let mut popularity = FxHashMap::default();
        for (_, tok, count) in vocab.iter() {
            popularity.insert(tok.to_string(), (count as f32 + 1.0).ln());
        }

        Resources {
            cfg,
            vocab,
            chars,
            word_vectors,
            pos,
            ner,
            lm,
            gloss_model,
            gloss_vectors,
            gloss_tfidf,
            popularity,
        }
    }

    /// Lexical-overlap similarity between two surfaces' glosses (TF-IDF
    /// cosine in `[0, 1]`; 0 when either gloss is unknown). Glosses of
    /// compatible primitives share vocabulary (the gloss of "warm" mentions
    /// skiing and hats; the gloss of "swimming" does not), so this is the
    /// wide-feature realization of "knowledge".
    pub fn gloss_similarity(&self, a: &str, b: &str) -> f32 {
        let (Some(va), Some(vb)) = (self.gloss_tfidf.get(a), self.gloss_tfidf.get(b)) else {
            return 0.0;
        };
        let (small, large) = if va.len() <= vb.len() {
            (va, vb)
        } else {
            (vb, va)
        };
        let dot: f32 = small
            .iter()
            .filter_map(|(t, x)| large.get(t).map(|y| x * y))
            .sum();
        let na: f32 = va.values().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = vb.values().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Gloss vector of a surface form (zeros when unknown — the model learns
    /// to ignore the null gloss).
    pub fn gloss_vector(&self, surface: &str) -> Vec<f32> {
        self.gloss_vectors
            .get(surface)
            .cloned()
            .unwrap_or_else(|| vec![0.0; self.cfg.gloss_dim])
    }

    /// Whether a surface has a real gloss.
    pub fn has_gloss(&self, surface: &str) -> bool {
        self.gloss_vectors.contains_key(surface)
    }

    /// Log-scaled corpus popularity of a word.
    pub fn popularity(&self, word: &str) -> f32 {
        self.popularity.get(word).copied().unwrap_or(0.0)
    }

    /// Perplexity of a token sequence under the fluency LM.
    pub fn perplexity(&self, tokens: &[String]) -> f64 {
        let ids = self.vocab.encode(tokens);
        self.lm.perplexity(&ids)
    }

    /// Char ids of a token sequence (flattened, with a separator char per
    /// word boundary).
    pub fn char_ids(&self, tokens: &[String]) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, tok) in tokens.iter().enumerate() {
            if i > 0 {
                out.push(alicoco_text::UNK); // separator stands in as UNK char
            }
            for ch in tok.chars() {
                out.push(self.chars.get_or_unk(&ch.to_string()));
            }
        }
        out
    }

    /// Char ids per token (for per-word char CNNs).
    pub fn word_char_ids(&self, token: &str) -> Vec<usize> {
        token
            .chars()
            .map(|c| self.chars.get_or_unk(&c.to_string()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alicoco_corpus::Dataset;

    fn resources() -> (Dataset, Resources) {
        let ds = Dataset::tiny();
        let cfg = ResourcesConfig {
            word_epochs: 2,
            gloss_epochs: 3,
            ..Default::default()
        };
        let r = Resources::build(&ds, cfg);
        (ds, r)
    }

    #[test]
    fn vocab_covers_corpus_and_concepts() {
        let (ds, r) = resources();
        assert!(r.vocab.get("barbecue").is_some());
        assert!(r.vocab.get("grill").is_some());
        for c in ds.concepts.iter().take(20) {
            for t in &c.tokens {
                assert!(
                    r.vocab.get(t).is_some(),
                    "concept token {t} missing from vocab"
                );
            }
        }
    }

    #[test]
    fn ner_tags_domains() {
        let (_, r) = resources();
        assert_eq!(r.ner.tag("red"), alicoco_corpus::Domain::Color.index() + 1);
        assert_eq!(
            r.ner.tag("barbecue"),
            alicoco_corpus::Domain::Event.index() + 1
        );
        assert_eq!(r.ner.tag("zzzz"), 0);
    }

    #[test]
    fn gloss_vectors_have_right_dim() {
        let (_, r) = resources();
        assert!(r.has_gloss("barbecue"));
        assert_eq!(r.gloss_vector("barbecue").len(), r.cfg.gloss_dim);
        assert!(!r.has_gloss("qqqq"));
        assert!(r.gloss_vector("qqqq").iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fluent_phrases_have_lower_perplexity() {
        let (_, r) = resources();
        let fluent = r.perplexity(&["outdoor".into(), "barbecue".into()]);
        let garbled = r.perplexity(&["barbecue".into(), "outdoor".into()]);
        // "outdoor barbecue" style phrases appear in queries; the reversed
        // order should be rarer.
        assert!(fluent < garbled, "fluent {fluent} !< garbled {garbled}");
    }

    #[test]
    fn char_ids_flatten_tokens() {
        let (_, r) = resources();
        let ids = r.char_ids(&["red".into(), "hat".into()]);
        assert_eq!(ids.len(), 7); // 3 + separator + 3
        assert!(!r.word_char_ids("red").is_empty());
    }

    #[test]
    fn popularity_reflects_frequency() {
        let (_, r) = resources();
        // "for" appears in many queries; a random brand name is rare.
        assert!(r.popularity("for") > r.popularity("nonexistent-word"));
    }
}
