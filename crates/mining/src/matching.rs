//! Concept–item semantic matching (§6, Table 6).
//!
//! Associates e-commerce concepts with items via text matching between the
//! concept phrase and the item title. Implements the paper's model
//! (knowledge-aware deep semantic matching, Figure 8) and every baseline of
//! Table 6: BM25, DSSM, MatchPyramid, and RE2 (the latter two in faithful
//! but lightweight forms — see DESIGN.md).

use alicoco_corpus::{concept_relevant_item, ConceptSpec, Dataset, ItemSpec};
use alicoco_nn::attention::{attentive_pool, attentive_pool_cols, PairAttention};
use alicoco_nn::conv::Conv1d;
use alicoco_nn::layers::{Activation, Embedding, Linear, Mlp};
use alicoco_nn::metrics::{binary_prf, precision_at_k, roc_auc};
use alicoco_nn::param::Param;
use alicoco_nn::{Adam, EpochStats, Graph, NodeId, ParamSet, Tensor, TrainConfig, Trainer};
use alicoco_text::bm25::{Bm25Index, Bm25Params};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::resources::Resources;

// ---------------------------------------------------------------------------
// Dataset
// ---------------------------------------------------------------------------

/// A labeled concept–item pair (indices into the dataset arrays).
pub type Pair = (usize, usize, f32);

/// The matching dataset: concepts (good, with at least one relevant item),
/// items, pairwise train/test sets, and per-concept ranking queries.
pub struct MatchingDataset {
    /// Concepts.
    pub concepts: Vec<ConceptSpec>,
    /// Items.
    pub items: Vec<ItemSpec>,
    /// Train.
    pub train: Vec<Pair>,
    /// Test.
    pub test: Vec<Pair>,
    /// Per-test-concept candidates for P@10: `(concept, [(item, relevant)])`.
    pub queries: Vec<(usize, Vec<(usize, bool)>)>,
}

/// Dataset construction knobs.
#[derive(Clone, Debug)]
pub struct MatchingDataConfig {
    /// Negatives per positive in the pairwise sets.
    pub neg_ratio: usize,
    /// Fraction of concepts held out for testing.
    pub test_fraction: f64,
    /// Max positives per concept (click-log truncation).
    pub max_pos_per_concept: usize,
    /// Candidates per ranking query.
    pub query_candidates: usize,
    /// Seed for sampling and splits.
    pub seed: u64,
}

impl Default for MatchingDataConfig {
    fn default() -> Self {
        MatchingDataConfig {
            neg_ratio: 3,
            test_fraction: 0.3,
            max_pos_per_concept: 8,
            query_candidates: 40,
            seed: 4242,
        }
    }
}

/// Build the matching dataset from ground truth (the click-log stand-in).
pub fn build_matching_dataset(ds: &Dataset, cfg: &MatchingDataConfig) -> MatchingDataset {
    let mut rng = alicoco_nn::util::seeded_rng(cfg.seed);
    let items = ds.items.clone();
    // Concepts with at least one relevant item.
    let mut concepts: Vec<ConceptSpec> = Vec::new();
    let mut positives: Vec<Vec<usize>> = Vec::new();
    for c in ds.concepts.iter().filter(|c| c.good) {
        let pos: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, it)| concept_relevant_item(&ds.world, c, it))
            .map(|(i, _)| i)
            .collect();
        if !pos.is_empty() {
            concepts.push(c.clone());
            positives.push(pos);
        }
    }
    // Split concepts.
    let mut order: Vec<usize> = (0..concepts.len()).collect();
    order.shuffle(&mut rng);
    let n_test = ((concepts.len() as f64) * cfg.test_fraction).round() as usize;
    let test_set: alicoco_nn::util::FxHashSet<usize> =
        order[..n_test.min(order.len())].iter().copied().collect();

    let mut train = Vec::new();
    let mut test = Vec::new();
    let mut queries = Vec::new();
    for (ci, pos) in positives.iter().enumerate() {
        let is_test = test_set.contains(&ci);
        let mut pos = pos.clone();
        pos.shuffle(&mut rng);
        pos.truncate(cfg.max_pos_per_concept);
        let sink = if is_test { &mut test } else { &mut train };
        for &p in &pos {
            sink.push((ci, p, 1.0));
            for _ in 0..cfg.neg_ratio {
                let mut guard = 0;
                loop {
                    guard += 1;
                    let cand = rng.gen_range(0..items.len());
                    if guard > 50 || !concept_relevant_item(&ds.world, &concepts[ci], &items[cand])
                    {
                        sink.push((ci, cand, 0.0));
                        break;
                    }
                }
            }
        }
        if is_test {
            // Ranking query: all (capped) positives + random negatives.
            let mut cands: Vec<(usize, bool)> = pos.iter().map(|&p| (p, true)).collect();
            let mut guard = 0;
            while cands.len() < cfg.query_candidates && guard < cfg.query_candidates * 30 {
                guard += 1;
                let cand = rng.gen_range(0..items.len());
                if !concept_relevant_item(&ds.world, &concepts[ci], &items[cand]) {
                    cands.push((cand, false));
                }
            }
            queries.push((ci, cands));
        }
    }
    train.shuffle(&mut rng);
    MatchingDataset {
        concepts,
        items,
        train,
        test,
        queries,
    }
}

/// Build the matching dataset with *click-log* training labels (§7.6: "the
/// positive pairs come from ... user click logs of the running
/// application"): the train split is replaced by pairs aggregated from a
/// simulated click log — noisy and position-biased — while the test split
/// and ranking queries keep oracle ground truth (the paper's
/// human-annotated test set).
pub fn build_matching_dataset_from_clicks(
    ds: &Dataset,
    cfg: &MatchingDataConfig,
    clicks: &alicoco_corpus::ClickConfig,
) -> MatchingDataset {
    let mut data = build_matching_dataset(ds, cfg);
    let log = alicoco_corpus::simulate_clicks(&ds.world, &data.concepts, &data.items, clicks);
    let test_concepts: alicoco_nn::util::FxHashSet<usize> =
        data.test.iter().map(|&(c, _, _)| c).collect();
    let mut train: Vec<Pair> = alicoco_corpus::pairs_from_log(&log)
        .into_iter()
        .filter(|(c, _, _)| !test_concepts.contains(c))
        .collect();
    let mut rng = alicoco_nn::util::seeded_rng(clicks.seed ^ 0xc11c);
    train.shuffle(&mut rng);
    data.train = train;
    data
}

/// Table 6 metrics for one model.
#[derive(Clone, Copy, Debug, Default)]
pub struct MatchingMetrics {
    /// ROC-AUC.
    pub auc: f64,
    /// F1 score.
    pub f1: f64,
    /// P at 10.
    pub p_at_10: f64,
}

/// Score all test pairs and queries with a scoring closure.
pub fn evaluate_matcher(
    data: &MatchingDataset,
    mut score: impl FnMut(usize, usize) -> f32,
) -> MatchingMetrics {
    let scored: Vec<(f32, bool)> = data
        .test
        .iter()
        .map(|&(c, i, y)| (score(c, i), y >= 0.5))
        .collect();
    let auc = roc_auc(&scored);
    let f1 = binary_prf(&scored, 0.5).f1;
    let mut p10 = 0.0;
    for (c, cands) in &data.queries {
        let ranked: Vec<(f32, bool)> = cands.iter().map(|&(i, y)| (score(*c, i), y)).collect();
        p10 += precision_at_k(&ranked, 10);
    }
    if !data.queries.is_empty() {
        p10 /= data.queries.len() as f64;
    }
    MatchingMetrics {
        auc,
        f1,
        p_at_10: p10,
    }
}

// ---------------------------------------------------------------------------
// BM25 baseline
// ---------------------------------------------------------------------------

/// BM25 retrieval baseline. Scores are unbounded, so (as in Table 6) only
/// the ranking metric P@10 is meaningful; AUC is reported for completeness.
pub struct Bm25Matcher {
    index: Bm25Index,
    queries: Vec<Vec<alicoco_text::TokenId>>,
}

impl Bm25Matcher {
    /// Build the structure.
    pub fn build(res: &Resources, data: &MatchingDataset) -> Self {
        let docs: Vec<Vec<alicoco_text::TokenId>> = data
            .items
            .iter()
            .map(|it| res.vocab.encode(&it.title))
            .collect();
        let queries = data
            .concepts
            .iter()
            .map(|c| res.vocab.encode(&c.tokens))
            .collect();
        Bm25Matcher {
            index: Bm25Index::build(&docs, Bm25Params::default()),
            queries,
        }
    }

    /// Score the input.
    pub fn score(&self, concept: usize, item: usize) -> f32 {
        self.index.score(&self.queries[concept], item) as f32
    }
}

// ---------------------------------------------------------------------------
// Shared input encoding for the neural matchers
// ---------------------------------------------------------------------------

/// Precomputed id sequences for one side of a pair.
struct Encoded {
    word_ids: Vec<usize>,
    pos_ids: Vec<usize>,
    ner_ids: Vec<usize>,
}

fn encode(res: &Resources, tokens: &[String]) -> Encoded {
    let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
    Encoded {
        word_ids: tokens.iter().map(|t| res.vocab.get_or_unk(t)).collect(),
        pos_ids: res.pos.tag_indices(&refs),
        ner_ids: res.ner.tag_indices(&refs),
    }
}

/// Input embedder shared by the neural matchers: word ⊕ POS ⊕ NER.
struct InputEmbedder {
    word: Embedding,
    pos: Embedding,
    ner: Embedding,
}

impl InputEmbedder {
    fn new(ps: &mut ParamSet, name: &str, res: &Resources, rng: &mut impl Rng) -> Self {
        InputEmbedder {
            // Frozen: the matchers must generalize to unseen concepts, and
            // fine-tuning pre-trained vectors on a small pair set destroys
            // the embedding geometry that transfer depends on.
            word: Embedding::from_pretrained_frozen(
                &format!("{name}.word"),
                res.word_vectors.vectors.clone(),
            ),
            pos: Embedding::new(
                ps,
                &format!("{name}.pos"),
                alicoco_text::tagger::PosTag::COUNT,
                4,
                rng,
            ),
            ner: Embedding::new(ps, &format!("{name}.ner"), res.ner.num_indices(), 6, rng),
        }
    }

    fn dim(&self) -> usize {
        self.word.dim() + 4 + 6
    }

    fn forward(&self, g: &mut Graph, e: &Encoded) -> NodeId {
        let w = self.word.forward(g, &e.word_ids);
        let p = self.pos.forward(g, &e.pos_ids);
        let n = self.ner.forward(g, &e.ner_ids);
        g.concat_cols(&[w, p, n])
    }
}

/// Precomputed cosine-similarity matrix between two token lists under the
/// frozen pre-trained embeddings; fed to the graph as a constant input.
/// Precomputed gloss-overlap similarity matrix (TF-IDF cosine between the
/// glosses of each token pair). This is the knowledge signal that bridges
/// vocabulary gaps: the gloss of "barbecue" mentions charcoal even though
/// the concept and the title share no words (the Table 6 case study).
fn gloss_matrix(res: &Resources, a: &[String], b: &[String]) -> Tensor {
    let mut m = Tensor::zeros(a.len(), b.len());
    for (i, ta) in a.iter().enumerate() {
        for (j, tb) in b.iter().enumerate() {
            m.set(i, j, res.gloss_similarity(ta, tb));
        }
    }
    m
}

fn cosine_matrix(res: &Resources, a: &[String], b: &[String]) -> Tensor {
    let mut m = Tensor::zeros(a.len(), b.len());
    for (i, ta) in a.iter().enumerate() {
        let va = res.word_vectors.vector(res.vocab.get_or_unk(ta));
        for (j, tb) in b.iter().enumerate() {
            let vb = res.word_vectors.vector(res.vocab.get_or_unk(tb));
            m.set(i, j, alicoco_text::word2vec::cosine(va, vb));
        }
    }
    m
}

/// Max over every element of a matrix -> scalar node.
fn max_all(g: &mut Graph, m: NodeId) -> NodeId {
    let (r, c) = {
        let v = g.value(m);
        v.shape()
    };
    let flat = g.reshape(m, r * c, 1);
    g.max_rows(flat)
}

/// 3x3 grid max-pooling over an arbitrary-size matrix (the dynamic pooling
/// of MatchPyramid). Returns a `(1, 9)` node.
fn grid_pool(g: &mut Graph, m: NodeId) -> NodeId {
    let (rows, cols) = {
        let v = g.value(m);
        v.shape()
    };
    let bands = |n: usize| -> Vec<(usize, usize)> {
        // Three contiguous bands covering [0, n).
        (0..3)
            .map(|k| {
                let start = k * n / 3;
                let end = ((k + 1) * n / 3).max(start + 1).min(n);
                (start.min(n - 1), (end - start.min(n - 1)).max(1))
            })
            .collect()
    };
    let row_bands = bands(rows);
    let col_bands = bands(cols);
    let mut cells = Vec::with_capacity(9);
    for &(rs, rl) in &row_bands {
        let band = g.slice_rows(m, rs, rl.min(rows - rs));
        let band_t = g.transpose(band);
        for &(cs, cl) in &col_bands {
            let cell = g.slice_rows(band_t, cs, cl.min(cols - cs));
            cells.push(max_all(g, cell));
        }
    }
    g.concat_cols(&cells)
}

// ---------------------------------------------------------------------------
// DSSM baseline (Huang et al. 2013, word-level variant)
// ---------------------------------------------------------------------------

/// Dssm matcher.
pub struct DssmMatcher {
    ps: ParamSet,
    emb: InputEmbedder,
    tower_c: Mlp,
    tower_i: Mlp,
    scale: Param,
    train: TrainConfig,
}

impl DssmMatcher {
    /// Create a new instance.
    pub fn new(res: &Resources, epochs: usize, seed: u64) -> Self {
        let mut rng = alicoco_nn::util::seeded_rng(seed);
        let mut ps = ParamSet::new();
        let emb = InputEmbedder::new(&mut ps, "dssm", res, &mut rng);
        let d = emb.dim();
        let tower_c = Mlp::new(&mut ps, "dssm.c", &[d, 32, 16], Activation::Tanh, &mut rng);
        let tower_i = Mlp::new(&mut ps, "dssm.i", &[d, 32, 16], Activation::Tanh, &mut rng);
        let scale = ps.add("dssm.scale", Tensor::scalar(5.0));
        DssmMatcher {
            ps,
            emb,
            tower_c,
            tower_i,
            scale,
            train: TrainConfig::new(epochs, 0.01),
        }
    }

    fn logit(&self, g: &mut Graph, res: &Resources, c: &[String], t: &[String]) -> NodeId {
        let ce = encode(res, c);
        let te = encode(res, t);
        let cm = self.emb.forward(g, &ce);
        let tm = self.emb.forward(g, &te);
        let cv = g.mean_rows(cm);
        let tv = g.mean_rows(tm);
        let ch = self.tower_c.forward(g, cv);
        let th = self.tower_i.forward(g, tv);
        // Cosine similarity scaled by a learned temperature.
        let dot = {
            let tt = g.transpose(th);
            g.matmul(ch, tt)
        };
        let c2 = g.mul(ch, ch);
        let t2 = g.mul(th, th);
        let cn = g.sum_cols(c2);
        let tn = g.sum_cols(t2);
        // logit = scale * dot / sqrt(cn * tn) ~ approximated with
        // normalization folded into training; a plain scaled dot keeps the
        // graph simple and trains equivalently at this size.
        let _ = (cn, tn);
        let s = g.param(&self.scale);
        g.mul(dot, s)
    }

    /// Train on the given data; returns per-epoch telemetry.
    pub fn train(
        &mut self,
        res: &Resources,
        data: &MatchingDataset,
        rng: &mut impl Rng,
    ) -> Vec<EpochStats> {
        let model = &*self;
        train_pairwise(&model.ps, &model.train, data, rng, |g, c, t| {
            model.logit(g, res, c, t)
        })
    }

    /// Score the input.
    pub fn score(&self, res: &Resources, data: &MatchingDataset, c: usize, i: usize) -> f32 {
        let mut g = Graph::new();
        let l = self.logit(&mut g, res, &data.concepts[c].tokens, &data.items[i].title);
        sigmoid(g.value(l).item())
    }
}

// ---------------------------------------------------------------------------
// MatchPyramid baseline (Pang et al. 2016, grid-pooled variant)
// ---------------------------------------------------------------------------

/// Match pyramid matcher.
pub struct MatchPyramidMatcher {
    ps: ParamSet,
    emb: InputEmbedder,
    head: Mlp,
    train: TrainConfig,
}

impl MatchPyramidMatcher {
    /// Create a new instance.
    pub fn new(res: &Resources, epochs: usize, seed: u64) -> Self {
        let mut rng = alicoco_nn::util::seeded_rng(seed);
        let mut ps = ParamSet::new();
        let emb = InputEmbedder::new(&mut ps, "mp", res, &mut rng);
        let head = Mlp::new(&mut ps, "mp.head", &[9, 16, 1], Activation::Relu, &mut rng);
        MatchPyramidMatcher {
            ps,
            emb,
            head,
            train: TrainConfig::new(epochs, 0.01),
        }
    }

    fn logit(&self, g: &mut Graph, res: &Resources, c: &[String], t: &[String]) -> NodeId {
        let ce = encode(res, c);
        let te = encode(res, t);
        let cm = self.emb.forward(g, &ce);
        let tm = self.emb.forward(g, &te);
        let tmt = g.transpose(tm);
        let m = g.matmul(cm, tmt); // dot-product matching matrix
        let pooled = grid_pool(g, m);
        self.head.forward(g, pooled)
    }

    /// Train on the given data; returns per-epoch telemetry.
    pub fn train(
        &mut self,
        res: &Resources,
        data: &MatchingDataset,
        rng: &mut impl Rng,
    ) -> Vec<EpochStats> {
        let model = &*self;
        train_pairwise(&model.ps, &model.train, data, rng, |g, c, t| {
            model.logit(g, res, c, t)
        })
    }

    /// Score the input.
    pub fn score(&self, res: &Resources, data: &MatchingDataset, c: usize, i: usize) -> f32 {
        let mut g = Graph::new();
        let l = self.logit(&mut g, res, &data.concepts[c].tokens, &data.items[i].title);
        sigmoid(g.value(l).item())
    }
}

// ---------------------------------------------------------------------------
// RE2 baseline (Yang et al. 2019, single-block variant)
// ---------------------------------------------------------------------------

/// Re2 matcher.
pub struct Re2Matcher {
    ps: ParamSet,
    emb: InputEmbedder,
    fuse: Linear,
    head: Mlp,
    train: TrainConfig,
}

impl Re2Matcher {
    /// Create a new instance.
    pub fn new(res: &Resources, epochs: usize, seed: u64) -> Self {
        let mut rng = alicoco_nn::util::seeded_rng(seed);
        let mut ps = ParamSet::new();
        let emb = InputEmbedder::new(&mut ps, "re2", res, &mut rng);
        let d = emb.dim();
        // Fusion of [a ; aligned ; a - aligned ; a * aligned].
        let fuse = Linear::new(&mut ps, "re2.fuse", 4 * d, 24, &mut rng);
        let head = Mlp::new(
            &mut ps,
            "re2.head",
            &[4 * 24, 24, 1],
            Activation::Relu,
            &mut rng,
        );
        Re2Matcher {
            ps,
            emb,
            fuse,
            head,
            train: TrainConfig::new(epochs, 0.01),
        }
    }

    /// Align `a` against `b` and produce a fused, max-pooled vector.
    fn align_pool(&self, g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
        let bt = g.transpose(b);
        let att = g.matmul(a, bt);
        let w = g.softmax_rows(att);
        let aligned = g.matmul(w, b);
        let diff = g.sub(a, aligned);
        let prod = g.mul(a, aligned);
        let cat = g.concat_cols(&[a, aligned, diff, prod]);
        let fused = self.fuse.forward(g, cat);
        let fused = g.relu(fused);
        g.max_rows(fused)
    }

    fn logit(&self, g: &mut Graph, res: &Resources, c: &[String], t: &[String]) -> NodeId {
        let ce = encode(res, c);
        let te = encode(res, t);
        let cm = self.emb.forward(g, &ce);
        let tm = self.emb.forward(g, &te);
        let va = self.align_pool(g, cm, tm);
        let vb = self.align_pool(g, tm, cm);
        let diff = g.sub(va, vb);
        let prod = g.mul(va, vb);
        let cat = g.concat_cols(&[va, vb, diff, prod]);
        self.head.forward(g, cat)
    }

    /// Train on the given data; returns per-epoch telemetry.
    pub fn train(
        &mut self,
        res: &Resources,
        data: &MatchingDataset,
        rng: &mut impl Rng,
    ) -> Vec<EpochStats> {
        let model = &*self;
        train_pairwise(&model.ps, &model.train, data, rng, |g, c, t| {
            model.logit(g, res, c, t)
        })
    }

    /// Score the input.
    pub fn score(&self, res: &Resources, data: &MatchingDataset, c: usize, i: usize) -> f32 {
        let mut g = Graph::new();
        let l = self.logit(&mut g, res, &data.concepts[c].tokens, &data.items[i].title);
        sigmoid(g.value(l).item())
    }
}

// ---------------------------------------------------------------------------
// Ours: knowledge-aware deep semantic matching (Figure 8)
// ---------------------------------------------------------------------------

/// Ablation switch: with/without the knowledge side (gloss vectors + linked
/// primitive class ids + K-layer matching pyramid over the enriched
/// sequence).
#[derive(Clone, Debug)]
pub struct OursConfig {
    /// Use knowledge.
    pub use_knowledge: bool,
    /// Two-way additive attention + attentive pooling (eq. 11-14);
    /// ablatable — mean pooling when off.
    pub use_attention: bool,
    /// Conv channels.
    pub conv_channels: usize,
    /// Attn hidden.
    pub attn_hidden: usize,
    /// K matching-matrix layers (eq. 16).
    pub k_layers: usize,
    /// Shared training-loop hyper-parameters.
    pub train: TrainConfig,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for OursConfig {
    fn default() -> Self {
        OursConfig {
            use_knowledge: true,
            use_attention: true,
            conv_channels: 20,
            attn_hidden: 16,
            k_layers: 2,
            train: TrainConfig::new(3, 0.003),
            seed: 66,
        }
    }
}

/// Ours matcher.
pub struct OursMatcher {
    ps: ParamSet,
    emb: InputEmbedder,
    conv_c: Conv1d,
    conv_t: Conv1d,
    pair_attn: PairAttention,
    /// Projects gloss vectors into word-embedding space for the knowledge
    /// sequence.
    gloss_proj: Linear,
    class_emb: Embedding,
    match_w: Vec<Param>,
    match_head: Mlp,
    head: Mlp,
    cfg: OursConfig,
}

impl OursMatcher {
    /// Create a new instance.
    pub fn new(res: &Resources, cfg: OursConfig) -> Self {
        let mut rng = alicoco_nn::util::seeded_rng(cfg.seed);
        let mut ps = ParamSet::new();
        let emb = InputEmbedder::new(&mut ps, "ours", res, &mut rng);
        let d = emb.dim();
        let conv_c = Conv1d::new(&mut ps, "ours.convc", d, cfg.conv_channels, 3, &mut rng);
        let conv_t = Conv1d::new(&mut ps, "ours.convt", d, cfg.conv_channels, 3, &mut rng);
        let pair_attn = PairAttention::new(
            &mut ps,
            "ours.attn",
            cfg.conv_channels,
            cfg.conv_channels,
            cfg.attn_hidden,
            &mut rng,
        );
        let wdim = emb.word.dim();
        let gloss_proj = Linear::new(&mut ps, "ours.gloss", res.cfg.gloss_dim, wdim, &mut rng);
        let class_emb = Embedding::new(&mut ps, "ours.class", 21, wdim, &mut rng);
        let match_w = (0..cfg.k_layers)
            .map(|k| {
                ps.add(
                    format!("ours.match{k}"),
                    Tensor::xavier(wdim, wdim, &mut rng),
                )
            })
            .collect();
        // K learned matching layers plus the precomputed gloss-overlap
        // matrix (also grid-pooled).
        let match_head = Mlp::new(
            &mut ps,
            "ours.mhead",
            &[9 * cfg.k_layers + 9, 16, 12],
            Activation::Relu,
            &mut rng,
        );
        // Head consumes both pooled vectors plus explicit interaction
        // features: elementwise product, difference, and the grid-pooled
        // attention matrix (the interaction signal of Figure 8).
        let head_in = 4 * cfg.conv_channels + 18 + if cfg.use_knowledge { 12 } else { 0 };
        let head = Mlp::new(
            &mut ps,
            "ours.head",
            &[head_in, 16, 1],
            Activation::Relu,
            &mut rng,
        );
        OursMatcher {
            ps,
            emb,
            conv_c,
            conv_t,
            pair_attn,
            gloss_proj,
            class_emb,
            match_w,
            match_head,
            head,
            cfg,
        }
    }

    /// Number of weights.
    pub fn num_weights(&self) -> usize {
        self.ps.num_weights()
    }

    /// Trainable parameters (for persistence via `alicoco_nn::persist`).
    pub fn params(&self) -> &ParamSet {
        &self.ps
    }

    fn logit(
        &self,
        g: &mut Graph,
        res: &Resources,
        concept: &ConceptSpec,
        title: &[String],
    ) -> NodeId {
        let ce = encode(res, &concept.tokens);
        let te = encode(res, title);
        let cm = self.emb.forward(g, &ce);
        let tm = self.emb.forward(g, &te);
        // Wide CNN encoders (eq. 9–10).
        let cenc = self.conv_c.forward(g, cm);
        let tenc = self.conv_t.forward(g, tm);
        // Two-way additive attention (eq. 11–13) and attentive pooling
        // (eq. 14).
        let att = self.pair_attn.forward(g, cenc, tenc);
        let (cvec, ivec) = if self.cfg.use_attention {
            (
                attentive_pool(g, att, cenc),
                attentive_pool_cols(g, att, tenc),
            )
        } else {
            (g.mean_rows(cenc), g.mean_rows(tenc))
        };
        let prod = g.mul(cvec, ivec);
        let diff = g.sub(cvec, ivec);
        let att_pool = grid_pool(g, att);
        // Frozen-embedding cosine matrix: the overlap signal that
        // generalizes to unseen concepts.
        let cos = g.input(cosine_matrix(res, &concept.tokens, title));
        let cos_pool = grid_pool(g, cos);
        let mut parts = vec![cvec, ivec, prod, diff, att_pool, cos_pool];

        if self.cfg.use_knowledge {
            // Knowledge-enriched concept-side sequence {w, k, cls}
            // (eq. 15–17): word embeddings, projected gloss vectors, and
            // class-id embeddings of the linked primitive concepts.
            let wids: Vec<usize> = concept
                .tokens
                .iter()
                .map(|t| res.vocab.get_or_unk(t))
                .collect();
            let words = self.emb.word.forward(g, &wids);
            let gloss_rows: Vec<f32> = concept
                .tokens
                .iter()
                .flat_map(|t| res.gloss_vector(t))
                .collect();
            let gloss_in = g.input(Tensor::from_vec(
                concept.tokens.len(),
                res.cfg.gloss_dim,
                gloss_rows,
            ));
            let gloss = self.gloss_proj.forward(g, gloss_in);
            let class_ids: Vec<usize> = concept
                .slots
                .iter()
                .map(|s| s.domain.index() + 1)
                .chain(std::iter::once(0)) // always at least one row
                .collect();
            let classes = self.class_emb.forward(g, &class_ids);
            let kw = g.concat_rows(&[words, gloss, classes]);
            // Title side: plain word embeddings.
            let tw = self.emb.word.forward(g, &te.word_ids);
            // K-layer matching pyramid (eq. 16–17).
            let mut pooled = Vec::with_capacity(self.cfg.k_layers + 1);
            for wk in &self.match_w {
                let w = g.param(wk);
                let kww = g.matmul(kw, w);
                let twt = g.transpose(tw);
                let m = g.matmul(kww, twt);
                pooled.push(grid_pool(g, m));
            }
            let gsim = g.input(gloss_matrix(res, &concept.tokens, title));
            pooled.push(grid_pool(g, gsim));
            let cat = g.concat_cols(&pooled);
            let ci = self.match_head.forward(g, cat);
            parts.push(ci);
        }
        let cat = g.concat_cols(&parts);
        self.head.forward(g, cat) // eq. 18
    }

    /// Train on the given data.
    pub fn train(
        &mut self,
        res: &Resources,
        data: &MatchingDataset,
        rng: &mut impl Rng,
    ) -> Vec<EpochStats> {
        let mut opt = Adam::new(self.cfg.train.lr);
        let model = &*self;
        let trainer = Trainer::new(&model.ps, model.cfg.train.clone()).labeled("semantic_matcher");
        trainer.train(
            &mut opt,
            &data.train,
            |g, &(c, i, y)| {
                let l = model.logit(g, res, &data.concepts[c], &data.items[i].title);
                Some(g.bce_with_logits(l, &[y]))
            },
            rng,
        )
    }

    /// Score the input.
    pub fn score(&self, res: &Resources, data: &MatchingDataset, c: usize, i: usize) -> f32 {
        let mut g = Graph::new();
        let l = self.logit(&mut g, res, &data.concepts[c], &data.items[i].title);
        sigmoid(g.value(l).item())
    }

    /// Score an arbitrary concept spec against an arbitrary title (used by
    /// the pipeline for concepts discovered at build time).
    pub fn score_spec(&self, res: &Resources, concept: &ConceptSpec, title: &[String]) -> f32 {
        let mut g = Graph::new();
        let l = self.logit(&mut g, res, concept, title);
        sigmoid(g.value(l).item())
    }
}

// ---------------------------------------------------------------------------
// Shared training loop
// ---------------------------------------------------------------------------

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

fn train_pairwise<F>(
    ps: &ParamSet,
    cfg: &TrainConfig,
    data: &MatchingDataset,
    rng: &mut impl Rng,
    logit: F,
) -> Vec<EpochStats>
where
    F: Fn(&mut Graph, &[String], &[String]) -> NodeId + Sync,
{
    let mut opt = Adam::new(cfg.lr);
    let trainer = Trainer::new(ps, cfg.clone()).labeled("semantic_matcher_baseline");
    trainer.train(
        &mut opt,
        &data.train,
        |g, &(c, i, y)| {
            let l = logit(g, &data.concepts[c].tokens, &data.items[i].title);
            Some(g.bce_with_logits(l, &[y]))
        },
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourcesConfig;

    fn setup() -> (Dataset, Resources, MatchingDataset) {
        let ds = Dataset::tiny();
        let res = Resources::build(&ds, ResourcesConfig::default());
        let data = build_matching_dataset(&ds, &MatchingDataConfig::default());
        (ds, res, data)
    }

    #[test]
    fn dataset_has_disjoint_splits_and_valid_labels() {
        let (ds, _, data) = setup();
        assert!(!data.train.is_empty() && !data.test.is_empty());
        let train_c: alicoco_nn::util::FxHashSet<usize> =
            data.train.iter().map(|&(c, _, _)| c).collect();
        let test_c: alicoco_nn::util::FxHashSet<usize> =
            data.test.iter().map(|&(c, _, _)| c).collect();
        assert!(
            train_c.is_disjoint(&test_c),
            "concept leakage between splits"
        );
        // Labels agree with ground truth.
        for &(c, i, y) in data.train.iter().take(100) {
            let truth = concept_relevant_item(&ds.world, &data.concepts[c], &data.items[i]);
            assert_eq!(truth, y >= 0.5);
        }
    }

    #[test]
    fn bm25_ranks_relevant_items_well() {
        let (_, res, data) = setup();
        let bm = Bm25Matcher::build(&res, &data);
        let m = evaluate_matcher(&data, |c, i| bm.score(c, i));
        // BM25 sees direct word overlap for attribute concepts; it must beat
        // random ranking clearly.
        assert!(m.p_at_10 > 0.2, "bm25 P@10 too low: {m:?}");
        assert!(m.auc > 0.6, "bm25 AUC too low: {m:?}");
    }

    #[test]
    fn ours_beats_chance_after_training() {
        let (_, res, data) = setup();
        let mut rng = alicoco_nn::util::seeded_rng(70);
        let mut ours = OursMatcher::new(
            &res,
            OursConfig {
                train: OursConfig::default().train.with_epochs(2),
                ..Default::default()
            },
        );
        let losses = ours.train(&res, &data, &mut rng);
        assert!(losses.last().unwrap().mean_loss < losses.first().unwrap().mean_loss);
        let m = evaluate_matcher(&data, |c, i| ours.score(&res, &data, c, i));
        assert!(m.auc > 0.75, "ours AUC too low: {m:?}");
        assert!(m.p_at_10 > 0.3, "ours P@10 too low: {m:?}");
    }

    #[test]
    fn knowledge_changes_the_architecture() {
        let (_, res, _) = setup();
        let with = OursMatcher::new(&res, OursConfig::default());
        let without = OursMatcher::new(
            &res,
            OursConfig {
                use_knowledge: false,
                ..Default::default()
            },
        );
        assert!(with.num_weights() > without.num_weights());
        // The two configs must also score differently on the same pair.
        let data = build_matching_dataset(&Dataset::tiny(), &MatchingDataConfig::default());
        let a = with.score(&res, &data, 0, 0);
        let b = without.score(&res, &data, 0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn grid_pool_is_translation_sensitive() {
        let mut g = Graph::new();
        let mut m = Tensor::zeros(6, 6);
        m.set(0, 0, 5.0);
        let n = g.input(m);
        let pooled = grid_pool(&mut g, n);
        let v = g.value(pooled);
        assert_eq!(v.shape(), (1, 9));
        assert_eq!(v.get(0, 0), 5.0);
        assert!(v.data()[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn grid_pool_handles_tiny_matrices() {
        let mut g = Graph::new();
        let n = g.input(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let pooled = grid_pool(&mut g, n);
        assert_eq!(g.value(pooled).shape(), (1, 9));
        // Max value must appear in the pooled features.
        assert!(g.value(pooled).data().contains(&4.0));
    }

    #[test]
    fn click_log_training_still_generalizes() {
        // Train labels from the noisy, position-biased click log; test on
        // oracle ground truth (the paper's protocol).
        let ds = Dataset::tiny();
        let res = Resources::build(&ds, ResourcesConfig::default());
        let data = build_matching_dataset_from_clicks(
            &ds,
            &MatchingDataConfig::default(),
            &alicoco_corpus::ClickConfig {
                sessions: 600,
                ..Default::default()
            },
        );
        assert!(!data.train.is_empty());
        // Click labels are noisy: some positives and negatives both present.
        let pos = data.train.iter().filter(|&&(_, _, y)| y >= 0.5).count();
        assert!(pos > 0 && pos < data.train.len());
        let mut rng = alicoco_nn::util::seeded_rng(72);
        let mut ours = OursMatcher::new(
            &res,
            OursConfig {
                train: OursConfig::default().train.with_epochs(2),
                ..Default::default()
            },
        );
        ours.train(&res, &data, &mut rng);
        let m = evaluate_matcher(&data, |c, i| ours.score(&res, &data, c, i));
        assert!(m.auc > 0.7, "click-trained AUC too low: {m:?}");
    }

    #[test]
    fn baseline_matchers_train_without_panicking() {
        let (_, res, data) = setup();
        let mut rng = alicoco_nn::util::seeded_rng(71);
        // One epoch each — the Table 6 comparison runs in the harness.
        let mut dssm = DssmMatcher::new(&res, 1, 1);
        dssm.train(&res, &data, &mut rng);
        let s = dssm.score(&res, &data, 0, 0);
        assert!(s.is_finite() && (0.0..=1.0).contains(&s));
        let mut re2 = Re2Matcher::new(&res, 1, 2);
        re2.train(&res, &data, &mut rng);
        assert!(re2.score(&res, &data, 0, 0).is_finite());
        let mut mp = MatchPyramidMatcher::new(&res, 1, 3);
        mp.train(&res, &data, &mut rng);
        assert!(mp.score(&res, &data, 0, 0).is_finite());
    }
}
