//! Instance-level schema-relation mining (§2).
//!
//! The taxonomy declares relation *schemas* between classes —
//! `suitable_when(Category, Time)`, `happens_in(Event, Location)` — and the
//! net stores instance pairs conforming to them ("cotton-padded trousers"
//! suitable_when "winter"). The paper seeds these from co-occurrence in
//! corpora plus manual checking; this module mines candidate pairs by PMI
//! over sentence/concept co-occurrence and gates them through the oracle,
//! replacing the hard-coded seed list the pipeline used before.

use alicoco_corpus::{Dataset, Domain, Oracle};
use alicoco_nn::util::{FxHashMap, FxHashSet};

/// A mined instance relation between two primitive surfaces.
#[derive(Clone, Debug, PartialEq)]
pub struct MinedRelation {
    /// Relation name from the schema.
    pub name: &'static str,
    /// Source surface form.
    pub from: String,
    /// From domain.
    pub from_domain: Domain,
    /// Target surface form.
    pub to: String,
    /// To domain.
    pub to_domain: Domain,
    /// Cooccurrences.
    pub cooccurrences: usize,
    /// Pointwise mutual information of the pair.
    pub pmi: f64,
}

/// Mining thresholds.
#[derive(Clone, Copy, Debug)]
pub struct RelationMinerConfig {
    /// Min cooccurrence.
    pub min_cooccurrence: usize,
    /// Min pmi.
    pub min_pmi: f64,
}

impl Default for RelationMinerConfig {
    fn default() -> Self {
        RelationMinerConfig {
            min_cooccurrence: 3,
            min_pmi: 0.5,
        }
    }
}

/// A schema to mine: relation name plus the `(from, to)` domains.
#[derive(Clone, Copy, Debug)]
pub struct RelationSchema {
    /// Relation name.
    pub name: &'static str,
    /// Source domain.
    pub from: Domain,
    /// Target domain.
    pub to: Domain,
}

/// The two schemas the paper names explicitly.
pub const DEFAULT_SCHEMAS: &[RelationSchema] = &[
    RelationSchema {
        name: "suitable_when",
        from: Domain::Category,
        to: Domain::Time,
    },
    RelationSchema {
        name: "happens_in",
        from: Domain::Event,
        to: Domain::Location,
    },
];

/// Mine instance relations from sentence-level co-occurrence across all
/// corpora (queries mention "winter jacket"; reviews mention "for barbecue
/// in the garden"). Surfaces are typed against the world lexicon/taxonomy;
/// ambiguous surfaces contribute to every domain they belong to.
pub fn mine_relations(
    ds: &Dataset,
    schemas: &[RelationSchema],
    cfg: &RelationMinerConfig,
) -> Vec<MinedRelation> {
    // Type each token: domain -> surfaces in that sentence.
    let domains_of = |tok: &str| -> Vec<Domain> {
        let mut out = ds.world.lexicon.domains_of(tok);
        if ds.world.category(tok).is_some() {
            out.push(Domain::Category);
        }
        out
    };

    // Counts per schema: (from_surface, to_surface) -> co-count; plus
    // marginals per surface per domain.
    let mut co: FxHashMap<(usize, String, String), usize> = FxHashMap::default();
    let mut marg: FxHashMap<(Domain, String), usize> = FxHashMap::default();
    let mut total_sentences = 0usize;
    for sent in ds.corpora.all_sentences() {
        total_sentences += 1;
        // Typed surfaces present in this sentence (1- and 2-token spans).
        let mut present: FxHashMap<Domain, FxHashSet<String>> = FxHashMap::default();
        let add = |surface: &str, present: &mut FxHashMap<Domain, FxHashSet<String>>| {
            for d in domains_of(surface) {
                present.entry(d).or_default().insert(surface.to_string());
            }
        };
        for tok in sent {
            add(tok, &mut present);
        }
        for w in sent.windows(2) {
            let span = w.join(" ");
            if ds.world.category(&span).is_some() {
                present.entry(Domain::Category).or_default().insert(span);
            }
        }
        for (d, surfaces) in &present {
            for s in surfaces {
                *marg.entry((*d, s.clone())).or_insert(0) += 1;
            }
        }
        for (si, schema) in schemas.iter().enumerate() {
            let (Some(from_set), Some(to_set)) =
                (present.get(&schema.from), present.get(&schema.to))
            else {
                continue;
            };
            for f in from_set {
                for t in to_set {
                    if f != t {
                        *co.entry((si, f.clone(), t.clone())).or_insert(0) += 1;
                    }
                }
            }
        }
    }
    if total_sentences == 0 {
        return Vec::new();
    }
    let n = total_sentences as f64;
    let mut out: Vec<MinedRelation> = Vec::new();
    for ((si, f, t), count) in co {
        if count < cfg.min_cooccurrence {
            continue;
        }
        let schema = &schemas[si];
        let pf = marg[&(schema.from, f.clone())] as f64 / n;
        let pt = marg[&(schema.to, t.clone())] as f64 / n;
        let pj = count as f64 / n;
        let pmi = (pj / (pf * pt)).ln();
        if pmi >= cfg.min_pmi {
            out.push(MinedRelation {
                name: schema.name,
                from: f,
                from_domain: schema.from,
                to: t,
                to_domain: schema.to,
                cooccurrences: count,
                pmi,
            });
        }
    }
    out.sort_by(|a, b| {
        alicoco::rank::score_desc(&a.pmi, &b.pmi)
            .then(b.cooccurrences.cmp(&a.cooccurrences))
            .then(a.from.cmp(&b.from))
            .then(a.to.cmp(&b.to))
    });
    out
}

/// Oracle verification of mined relations against the world's ground truth
/// (`cat_time_ok` for suitable_when, `event_loc_ok` for happens_in). Each
/// check costs one label. Returns the accepted subset and precision.
pub fn verify_relations(
    ds: &Dataset,
    oracle: &Oracle<'_>,
    mined: &[MinedRelation],
) -> (Vec<MinedRelation>, f64) {
    let mut accepted = Vec::new();
    for r in mined {
        let truth = match r.name {
            "suitable_when" => ds
                .world
                .category(&r.from)
                .is_some_and(|cat| ds.world.cat_time_ok(cat, &r.to)),
            "happens_in" => ds.world.event_loc_ok(&r.from, &r.to),
            _ => false,
        };
        // Route through the oracle for label accounting (one label each);
        // the oracle answers arbitrary primitive questions, so reuse the
        // generic counter by charging a primitive-label query.
        let answer = oracle.label_primitive(&r.from, r.from_domain) && truth;
        if answer {
            accepted.push(r.clone());
        }
    }
    let precision = if mined.is_empty() {
        0.0
    } else {
        accepted.len() as f64 / mined.len() as f64
    };
    (accepted, precision)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Dataset {
        Dataset::tiny()
    }

    #[test]
    fn mines_happens_in_for_events() {
        let ds = setup();
        let mined = mine_relations(&ds, DEFAULT_SCHEMAS, &RelationMinerConfig::default());
        assert!(!mined.is_empty(), "nothing mined");
        // Reviews/queries pair events with their locations; "barbecue
        // happens_in outdoor/garden/park/beach" should be recoverable.
        let bbq: Vec<&MinedRelation> = mined
            .iter()
            .filter(|r| r.name == "happens_in" && r.from == "barbecue")
            .collect();
        assert!(!bbq.is_empty(), "no barbecue location relations: {mined:?}");
        for r in &bbq {
            assert!(
                ds.world.event_loc_ok("barbecue", &r.to),
                "mined wrong location {} for barbecue",
                r.to
            );
        }
    }

    #[test]
    fn mined_relations_are_mostly_true() {
        let ds = setup();
        let mined = mine_relations(&ds, DEFAULT_SCHEMAS, &RelationMinerConfig::default());
        let truth_rate = mined
            .iter()
            .filter(|r| match r.name {
                "suitable_when" => ds
                    .world
                    .category(&r.from)
                    .is_some_and(|c| ds.world.cat_time_ok(c, &r.to)),
                "happens_in" => ds.world.event_loc_ok(&r.from, &r.to),
                _ => false,
            })
            .count() as f64
            / mined.len().max(1) as f64;
        assert!(truth_rate > 0.5, "mined precision too low: {truth_rate}");
    }

    #[test]
    fn verification_gates_and_counts_labels() {
        let ds = setup();
        let oracle = Oracle::new(&ds.world);
        let mined = mine_relations(&ds, DEFAULT_SCHEMAS, &RelationMinerConfig::default());
        let (accepted, precision) = verify_relations(&ds, &oracle, &mined);
        assert!(oracle.labels_used() as usize >= mined.len());
        assert!(accepted.len() <= mined.len());
        assert!(precision > 0.0);
        for r in &accepted {
            match r.name {
                "suitable_when" => {
                    let c = ds.world.category(&r.from).unwrap();
                    assert!(ds.world.cat_time_ok(c, &r.to));
                }
                "happens_in" => assert!(ds.world.event_loc_ok(&r.from, &r.to)),
                other => panic!("unexpected relation {other}"),
            }
        }
    }

    #[test]
    fn thresholds_filter() {
        let ds = setup();
        let strict = mine_relations(
            &ds,
            DEFAULT_SCHEMAS,
            &RelationMinerConfig {
                min_cooccurrence: 10_000,
                min_pmi: 10.0,
            },
        );
        assert!(strict.is_empty());
    }

    #[test]
    fn output_is_sorted_by_pmi() {
        let ds = setup();
        let mined = mine_relations(&ds, DEFAULT_SCHEMAS, &RelationMinerConfig::default());
        for w in mined.windows(2) {
            assert!(w[0].pmi >= w[1].pmi);
        }
    }
}
