//! End-to-end construction pipeline: wires the five modules together and
//! assembles an [`alicoco::AliCoCo`] instance from a synthetic dataset,
//! following the paper's semi-automatic recipe (machine mining + oracle
//! verification gates).
//!
//! Steps (§2–§6):
//! 1. define the taxonomy (20 domains; Category gets a class hierarchy),
//! 2. align the known lexicon into the primitive layer ("ontology
//!    matching"), then mine new primitives with the BiLSTM-CRF miner and
//!    admit oracle-verified candidates,
//! 3. add isA edges from patterns and the projection model,
//! 4. generate e-commerce concept candidates, filter with the classifier,
//!    gate batches through the oracle,
//! 5. tag admitted concepts and link them to primitives,
//! 6. associate items: primitives by title match (CPV-style), e-commerce
//!    concepts via BM25 candidate retrieval + the knowledge-aware matcher,
//!    storing the matcher score as the edge probability (§10 future work 2).

use alicoco::{AliCoCo, ClassId};
use alicoco_corpus::{Dataset, Domain, Oracle};
use alicoco_nn::record_epoch_stats;
use alicoco_nn::util::{FxHashMap, FxHashSet};
use alicoco_obs::Registry;

use crate::congen::{
    candidates_from_patterns, candidates_from_text, quality_gate, Candidate, ClassifierConfig,
    ConceptClassifier, PrimitivePools,
};
use crate::hypernym::{pattern_based_pairs, HypernymDataset, ProjectionConfig, ProjectionModel};
use crate::matching::{build_matching_dataset, MatchingDataConfig, OursConfig, OursMatcher};
use crate::resources::{Resources, ResourcesConfig};
use crate::tagging::{
    spans, tagging_splits, AmbiguityIndex, ConceptTagger, ContextIndex, TaggerConfig,
};
use crate::vocab_mining::{
    corpus_surfaces, distant_supervision, mine_candidates, verify_candidates, KnownLexicon,
    VocabMiner, VocabMinerConfig,
};

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Fraction of the lexicon assumed pre-existing (aligned, not mined).
    pub known_fraction: f64,
    /// Resources.
    pub resources: ResourcesConfig,
    /// Miner.
    pub miner: VocabMinerConfig,
    /// Projection.
    pub projection: ProjectionConfig,
    /// Classifier.
    pub classifier: ClassifierConfig,
    /// Tagger.
    pub tagger: TaggerConfig,
    /// Matcher.
    pub matcher: OursConfig,
    /// Concept candidates to generate from patterns.
    pub pattern_candidates: usize,
    /// BM25 candidates per concept for item association.
    pub item_candidates: usize,
    /// Matcher-score threshold for linking an item.
    pub link_threshold: f32,
    /// Hypernym-model score threshold.
    pub hypernym_threshold: f32,
    /// Examples per optimizer step for every model trained by the pipeline
    /// (overrides each sub-config's `train.batch_size`). `1` reproduces the
    /// historical per-example stepping.
    pub train_batch: usize,
    /// Worker threads for every model's training loop (overrides each
    /// sub-config's `train.workers`). Results are byte-identical for any
    /// value; more workers only change wall-clock time.
    pub train_workers: usize,
    /// Master seed for the whole run.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            known_fraction: 0.75,
            resources: ResourcesConfig::default(),
            miner: VocabMinerConfig::default(),
            projection: ProjectionConfig::default(),
            classifier: ClassifierConfig::full(),
            tagger: TaggerConfig::full(),
            matcher: OursConfig::default(),
            pattern_candidates: 300,
            item_candidates: 30,
            link_threshold: 0.5,
            hypernym_threshold: 0.7,
            train_batch: 1,
            train_workers: 1,
            seed: 20200614,
        }
    }
}

/// Accounting of one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// Primitives aligned.
    pub primitives_aligned: usize,
    /// Candidates mined.
    pub candidates_mined: usize,
    /// Primitives mined.
    pub primitives_mined: usize,
    /// Is a from patterns.
    pub is_a_from_patterns: usize,
    /// Is a from model.
    pub is_a_from_model: usize,
    /// Concept candidates.
    pub concept_candidates: usize,
    /// Concepts admitted.
    pub concepts_admitted: usize,
    /// Concept primitive links.
    pub concept_primitive_links: usize,
    /// Item primitive links.
    pub item_primitive_links: usize,
    /// Concept item links.
    pub concept_item_links: usize,
    /// Oracle labels.
    pub oracle_labels: u64,
}

/// Run the full pipeline and return the assembled concept net plus report.
pub fn build_alicoco(ds: &Dataset, cfg: &PipelineConfig) -> (AliCoCo, PipelineReport) {
    // A throwaway registry: six span histograms and the per-model epoch
    // bridge record into it and are dropped — negligible next to model
    // training, so the uninstrumented entry point stays the default.
    build_alicoco_instrumented(ds, cfg, &Registry::new())
}

/// [`build_alicoco`] recording stage wall-clock (`pipeline.*_ns`
/// histograms), per-model training telemetry (`train.<model>.*` via
/// [`record_epoch_stats`]), and the final report counts (`pipeline.*`
/// counters) into `metrics`.
pub fn build_alicoco_instrumented(
    ds: &Dataset,
    cfg: &PipelineConfig,
    metrics: &Registry,
) -> (AliCoCo, PipelineReport) {
    // Apply the pipeline-wide sharding knobs to every model's training
    // config. Byte-identical results for any `train_workers` (the trainer's
    // determinism contract), so parallelism is safe to turn on globally.
    let mut cfg = cfg.clone();
    for train in [
        &mut cfg.miner.train,
        &mut cfg.projection.train,
        &mut cfg.classifier.train,
        &mut cfg.tagger.train,
        &mut cfg.matcher.train,
    ] {
        train.batch_size = cfg.train_batch.max(1);
        train.workers = cfg.train_workers.max(1);
    }
    let cfg = &cfg;
    let mut rng = alicoco_nn::util::seeded_rng(cfg.seed);
    let oracle = Oracle::new(&ds.world);
    let res = Resources::build(ds, cfg.resources.clone());
    let mut kg = AliCoCo::new();
    let mut report = PipelineReport::default();

    // ---- 1. taxonomy -----------------------------------------------------
    let stage = metrics.span("pipeline.taxonomy_ns");
    let root = kg.add_class("concept", None);
    let mut domain_class: FxHashMap<Domain, ClassId> = FxHashMap::default();
    for d in Domain::ALL {
        domain_class.insert(d, kg.add_class(d.name(), Some(root)));
    }
    // Category classes: the top two levels of the world tree become taxonomy
    // classes ("clothing-and-accessory", "top"); deeper nodes become
    // primitive concepts indexed under them.
    let cat_domain = domain_class[&Domain::Category];
    let tree = &ds.world.tree;
    let mut tree_class: FxHashMap<usize, ClassId> = FxHashMap::default();
    tree_class.insert(0, cat_domain);
    for id in tree.ids().filter(|&i| i != 0) {
        let depth = tree.node(id).depth;
        if depth <= 2 {
            let parent = tree_class[&tree.node(id).parent.expect("non-root")];
            tree_class.insert(id, kg.add_class(tree.name(id), Some(parent)));
        }
    }
    // Schema relations (§2): a category may be suitable_when a time; events
    // happen_in locations.
    kg.add_schema_relation("suitable_when", cat_domain, domain_class[&Domain::Time]);
    kg.add_schema_relation(
        "happens_in",
        domain_class[&Domain::Event],
        domain_class[&Domain::Location],
    );

    stage.stop();

    // ---- 2. primitive layer ----------------------------------------------
    let stage = metrics.span("pipeline.primitive_layer_ns");
    let (known, heldout) = KnownLexicon::sample(ds, cfg.known_fraction, &mut rng);
    // The taxonomy class a primitive is indexed under.
    let class_of = |kg: &AliCoCo, surface: &str, d: Domain| -> ClassId {
        if d == Domain::Category {
            if let Some(node) = ds
                .world
                .category(surface)
                .or_else(|| ds.world.category(&surface.replace('-', " ")))
            {
                // Deepest class-level ancestor.
                let mut cur = node;
                while tree.node(cur).depth > 2 {
                    cur = tree.node(cur).parent.expect("depth > 2 has parent");
                }
                if let Some(name) = Some(tree.name(cur)) {
                    if let Some(c) = kg.class_by_name(name) {
                        return c;
                    }
                }
            }
        }
        *domain_class.get(&d).expect("all domains present")
    };
    for (surface, domains) in known.iter() {
        for &d in domains {
            let class = class_of(&kg, surface, d);
            kg.add_primitive(surface, class);
            report.primitives_aligned += 1;
        }
    }

    // Mining round: distant supervision -> BiLSTM-CRF -> oracle gate.
    let sentences: Vec<Vec<String>> = ds.corpora.all_sentences().cloned().collect();
    let train_data = distant_supervision(&known, &sentences, 800);
    let mut miner = VocabMiner::new(&res, cfg.miner.clone());
    let miner_stats = miner.train(&res, &train_data, &mut rng);
    record_epoch_stats(metrics, "vocab_miner", &miner_stats);
    let candidates = mine_candidates(&miner, &res, &known, &sentences);
    report.candidates_mined = candidates.len();
    let surfaces = corpus_surfaces(&sentences);
    let (accepted, _) = verify_candidates(&candidates, &oracle, &heldout, &surfaces);
    for c in &accepted {
        let class = class_of(&kg, &c.surface, c.domain);
        kg.add_primitive(&c.surface, class);
        report.primitives_mined += 1;
    }

    stage.stop();

    // ---- 3. hypernym discovery --------------------------------------------
    let stage = metrics.span("pipeline.hypernyms_ns");
    let find_cat_primitive = |kg: &AliCoCo, name: &str| {
        kg.primitives_by_name(name)
            .iter()
            .copied()
            .find(|&p| kg.class_domain(kg.primitive(p).class) == cat_domain)
            .or_else(|| {
                let alt = name.replace('-', " ");
                kg.primitives_by_name(&alt)
                    .iter()
                    .copied()
                    .find(|&p| kg.class_domain(kg.primitive(p).class) == cat_domain)
            })
    };
    // Pattern-based pairs are high precision; add directly (paper applies
    // rule-based extraction without model gating).
    for (hypo, hyper) in pattern_based_pairs(ds) {
        if let (Some(a), Some(b)) = (
            find_cat_primitive(&kg, &hypo),
            find_cat_primitive(&kg, &hyper),
        ) {
            if kg.try_add_primitive_is_a(a, b) {
                report.is_a_from_patterns += 1;
            }
        }
    }
    // Projection model proposals, oracle-gated.
    let hyp_data = HypernymDataset::build(ds, &res, &mut rng);
    let triples = hyp_data.labeled_pairs(&hyp_data.train_pos, 6, &mut rng);
    let mut proj = ProjectionModel::new(res.word_vectors.dim(), cfg.projection.clone());
    let proj_stats = proj.train(&hyp_data, &triples, &mut rng);
    record_epoch_stats(metrics, "hypernym_projection", &proj_stats);
    for (hi, hypo_name) in hyp_data.terms.iter().enumerate() {
        let Some(a) = find_cat_primitive(&kg, hypo_name) else {
            continue;
        };
        for (ai, hyper_name) in hyp_data.terms.iter().enumerate() {
            if hi == ai {
                continue;
            }
            if proj.score(&hyp_data.vecs[hi], &hyp_data.vecs[ai]) >= cfg.hypernym_threshold
                && oracle.label_hypernym(hypo_name, hyper_name)
            {
                if let Some(b) = find_cat_primitive(&kg, hyper_name) {
                    if kg.try_add_primitive_is_a(a, b) {
                        report.is_a_from_model += 1;
                    }
                }
            }
        }
    }

    // Instance-level schema relations (§2): mine suitable_when /
    // happens_in pairs from corpus co-occurrence and gate them through the
    // oracle before recording.
    let mined_rels = crate::relations::mine_relations(
        ds,
        crate::relations::DEFAULT_SCHEMAS,
        &crate::relations::RelationMinerConfig::default(),
    );
    let (accepted_rels, _) = crate::relations::verify_relations(ds, &oracle, &mined_rels);
    for r in &accepted_rels {
        let from = match r.from_domain {
            Domain::Category => find_cat_primitive(&kg, &r.from),
            d => kg.primitive_in_domain(&r.from, domain_class[&d]),
        };
        let to = kg.primitive_in_domain(&r.to, domain_class[&r.to_domain]);
        if let (Some(f), Some(t)) = (from, to) {
            kg.add_primitive_relation(r.name, f, t);
        }
    }

    stage.stop();

    // ---- 4. e-commerce concepts --------------------------------------------
    let stage = metrics.span("pipeline.concept_generation_ns");
    let pools = PrimitivePools::from_dataset(ds);
    let mut candidates: Vec<Candidate> = candidates_from_text(ds, &res, 150);
    candidates.extend(candidates_from_patterns(
        &pools,
        cfg.pattern_candidates,
        &mut rng,
    ));
    report.concept_candidates = candidates.len();
    // Annotation (§7.4): a large sampled portion of the *candidate set* is
    // labeled and becomes training data, so the classifier sees the same
    // distribution it must filter. The curated ground-truth concepts serve
    // as extra examples.
    use rand::seq::SliceRandom;
    let mut cls_train: Vec<(Vec<String>, f32)> =
        crate::congen::classification_splits(ds, &mut rng).0;
    let mut cand_ixs: Vec<usize> = (0..candidates.len()).collect();
    cand_ixs.shuffle(&mut rng);
    let annotate = cand_ixs.len() * 6 / 10;
    let annotated: FxHashSet<usize> = cand_ixs[..annotate].iter().copied().collect();
    for &ix in &cand_ixs[..annotate] {
        let y = oracle.label_concept(&candidates[ix].tokens);
        cls_train.push((candidates[ix].tokens.clone(), if y { 1.0 } else { 0.0 }));
    }
    let mut classifier = ConceptClassifier::new(&res, cfg.classifier.clone());
    let cls_stats = classifier.train(&res, &cls_train, &mut rng);
    record_epoch_stats(metrics, "concept_classifier", &cls_stats);
    // Annotated candidates bypass the model (their label is already known):
    // approved ones are admitted directly. Unlabeled candidates flow through
    // the classifier and then the batch quality gate (§5.2.2): each batch is
    // sample-checked by the oracle and admitted only if the sampled accuracy
    // clears the threshold.
    let mut admitted: Vec<Candidate> = Vec::new();
    let mut unlabeled: Vec<Candidate> = Vec::new();
    for (ix, c) in candidates.into_iter().enumerate() {
        if annotated.contains(&ix) {
            let approved = cls_train
                .iter()
                .rev()
                .find(|(t, _)| *t == c.tokens)
                .is_some_and(|(_, y)| *y >= 0.5);
            if approved {
                admitted.push(c);
            }
        } else {
            unlabeled.push(c);
        }
    }
    let accepted: Vec<Candidate> = unlabeled
        .into_iter()
        .filter(|c| classifier.score(&res, &c.tokens) >= 0.6)
        .collect();
    for chunk in accepted.chunks(40) {
        let gate = quality_gate(chunk, &oracle, 0.3, 0.6, &mut rng);
        if gate.admitted {
            admitted.extend(chunk.iter().cloned());
        }
    }

    stage.stop();

    // ---- 5. tagging / linking ----------------------------------------------
    let stage = metrics.span("pipeline.tagging_linking_ns");
    let (mut tag_train, _, _) = tagging_splits(ds, &mut rng);
    tag_train.extend(crate::tagging::distant_tagging_examples(
        ds,
        300,
        cfg.seed ^ tag_placeholder(),
    ));
    let amb = AmbiguityIndex::build(ds);
    let ctx_words: FxHashSet<String> = admitted
        .iter()
        .flat_map(|c| c.tokens.iter().cloned())
        .chain(tag_train.iter().flat_map(|e| e.tokens.iter().cloned()))
        .collect();
    let ctx = ContextIndex::build(&res, ds, ctx_words.iter().map(String::as_str), 3);
    let mut tagger = ConceptTagger::new(&res, cfg.tagger.clone());
    let tagger_stats = tagger.train(&res, &ctx, &amb, &tag_train, &mut rng);
    record_epoch_stats(metrics, "concept_tagger", &tagger_stats);

    let mut admitted_specs: Vec<alicoco::ConceptId> = Vec::new();
    for cand in &admitted {
        let text = cand.tokens.join(" ");
        let cid = kg.add_concept(&text);
        admitted_specs.push(cid);
        report.concepts_admitted += 1;
        let labels = tagger.tag(&res, &ctx, &cand.tokens);
        for (start, len, domain) in spans(&labels) {
            let surface = cand.tokens[start..start + len].join(" ");
            let class = class_of(&kg, &surface, domain);
            // Link to an existing primitive sense in this domain; create the
            // primitive if the tagger surfaced a new one.
            let pid = kg
                .primitive_in_domain(&surface, domain_class[&domain])
                .unwrap_or_else(|| kg.add_primitive(&surface, class));
            kg.link_concept_primitive(cid, pid);
            report.concept_primitive_links += 1;
        }
    }
    // Concept isA: suffix rule ("outdoor barbecue" isA "barbecue";
    // "british-style winter coat" isA "winter coat"). When the suffix is a
    // valid concept that was not itself admitted, ask the oracle once and
    // admit it — this is how the concept layer densifies into the paper's
    // 22M-edge isA structure.
    let mut by_text: FxHashMap<String, alicoco::ConceptId> = admitted_specs
        .iter()
        .map(|&c| (kg.concept(c).name.clone(), c))
        .collect();
    let concept_texts: Vec<String> = by_text.keys().cloned().collect();
    for text in &concept_texts {
        let tokens: Vec<String> = text.split(' ').map(String::from).collect();
        if tokens.len() < 2 {
            continue;
        }
        let suffix_tokens: Vec<String> = tokens[1..].to_vec();
        let suffix = suffix_tokens.join(" ");
        let hyper = match by_text.get(&suffix) {
            Some(&h) => Some(h),
            None => {
                if oracle.label_concept(&suffix_tokens) {
                    let h = kg.add_concept(&suffix);
                    by_text.insert(suffix.clone(), h);
                    report.concepts_admitted += 1;
                    Some(h)
                } else {
                    None
                }
            }
        };
        if let Some(hyper) = hyper {
            let hypo = by_text[text];
            kg.try_add_concept_is_a(hypo, hyper);
        }
    }

    stage.stop();

    // ---- 6. items ------------------------------------------------------------
    let stage = metrics.span("pipeline.item_association_ns");
    // Item -> primitive links: CPV-style longest-match over titles.
    let mut item_ids = Vec::with_capacity(ds.items.len());
    for item in &ds.items {
        let iid = kg.add_item(&item.title);
        item_ids.push(iid);
        let mut t = 0;
        while t < item.title.len() {
            let mut matched = 0;
            for n in (1..=2.min(item.title.len() - t)).rev() {
                let span = item.title[t..t + n].join(" ");
                let senses = kg.primitives_by_name(&span);
                if let Some(&p) = senses.first() {
                    // Ambiguous surfaces link every sense in production;
                    // we link the first (deterministic) sense.
                    kg.link_item_primitive(iid, p);
                    report.item_primitive_links += 1;
                    matched = n;
                    break;
                }
            }
            t += matched.max(1);
        }
    }
    // Concept -> item links: train the knowledge-aware matcher on the
    // click-log stand-in, then for every admitted concept retrieve BM25
    // candidates (over both title overlap and gloss neighbours) and link the
    // pairs the matcher accepts, storing the score as the edge probability.
    let match_data = build_matching_dataset(ds, &MatchingDataConfig::default());
    let mut matcher = OursMatcher::new(&res, cfg.matcher.clone());
    let matcher_stats = matcher.train(&res, &match_data, &mut rng);
    record_epoch_stats(metrics, "semantic_matcher", &matcher_stats);
    // Index titles with hyphen decompounding ("pro-grill" also indexed as
    // "pro" and "grill") so gloss-derived query terms reach compound
    // products — the standard decompounding trick of product search.
    let item_docs: Vec<Vec<alicoco_text::TokenId>> = ds
        .items
        .iter()
        .map(|it| {
            let mut toks: Vec<String> = it.title.clone();
            for t in &it.title {
                if t.contains('-') {
                    toks.extend(t.split('-').map(String::from));
                }
            }
            res.vocab.encode(&toks)
        })
        .collect();
    let mut bm25 =
        alicoco_text::bm25::Bm25Index::build(&item_docs, alicoco_text::bm25::Bm25Params::default());
    bm25.set_metrics(alicoco_text::bm25::Bm25Metrics::register(metrics));
    // Reconstruct a spec per admitted concept from its tagged spans so the
    // matcher's knowledge side has slots to embed.
    for cand in &admitted {
        let text = cand.tokens.join(" ");
        let Some(&cid) = by_text.get(&text) else {
            continue;
        };
        let labels = tagger.tag(&res, &ctx, &cand.tokens);
        let slots: Vec<alicoco_corpus::Slot> = spans(&labels)
            .into_iter()
            .map(|(start, len, domain)| alicoco_corpus::Slot {
                domain,
                surface: cand.tokens[start..start + len].join(" "),
                start,
                len,
            })
            .collect();
        let spec = alicoco_corpus::ConceptSpec {
            tokens: cand.tokens.clone(),
            slots,
            pattern: "pipeline",
            good: true,
            defect: None,
        };
        // Expand the BM25 query with gloss terms of the concept tokens so
        // relational matches ("barbecue" -> charcoal) are retrievable.
        let mut query = res.vocab.encode(&cand.tokens);
        for t in &cand.tokens {
            if let Some(g) = ds.glosses.gloss(t) {
                query.extend(res.vocab.encode(&g[..g.len().min(10)]));
            }
        }
        let mut scored: Vec<(usize, f32)> = bm25
            .search(&query, cfg.item_candidates)
            .into_iter()
            .map(|(ii, _)| (ii, matcher.score_spec(&res, &spec, &ds.items[ii].title)))
            .collect();
        scored.sort_by(alicoco::rank::by_score_then_id);
        let mut linked = 0;
        for &(ii, s) in &scored {
            if s >= cfg.link_threshold {
                kg.link_concept_item(cid, item_ids[ii], s.clamp(0.0, 1.0));
                report.concept_item_links += 1;
                linked += 1;
            }
        }
        // Coverage floor: a concept card with no items is useless in
        // production, so when the matcher accepts nothing, keep its top few
        // candidates with their (honest, low) scores.
        if linked == 0 {
            for &(ii, s) in scored.iter().take(3) {
                kg.link_concept_item(cid, item_ids[ii], s.clamp(0.01, 1.0));
                report.concept_item_links += 1;
            }
        }
    }

    // Hypernym concepts inherit their hyponyms' items, discounted — a
    // "winter coat" card can show what "british-style winter coat" sells.
    let is_a_pairs: Vec<(alicoco::ConceptId, alicoco::ConceptId)> = kg
        .concept_ids()
        .flat_map(|c| {
            kg.concept(c)
                .hypernyms
                .clone()
                .into_iter()
                .map(move |h| (c, h))
        })
        .collect();
    for (hypo, hyper) in is_a_pairs {
        for (item, w) in kg.items_for_concept(hypo) {
            if !kg.concept(hyper).items.iter().any(|&(i, _)| i == item) {
                kg.link_concept_item(hyper, item, (w * 0.8).clamp(0.0, 1.0));
                report.concept_item_links += 1;
            }
        }
    }

    stage.stop();

    report.oracle_labels = oracle.labels_used();
    // Export the report counts so `--metrics` runs carry construction-side
    // accounting next to the serving and training metrics.
    for (name, value) in [
        (
            "pipeline.primitives_aligned",
            report.primitives_aligned as u64,
        ),
        ("pipeline.candidates_mined", report.candidates_mined as u64),
        ("pipeline.primitives_mined", report.primitives_mined as u64),
        (
            "pipeline.is_a_from_patterns",
            report.is_a_from_patterns as u64,
        ),
        ("pipeline.is_a_from_model", report.is_a_from_model as u64),
        (
            "pipeline.concept_candidates",
            report.concept_candidates as u64,
        ),
        (
            "pipeline.concepts_admitted",
            report.concepts_admitted as u64,
        ),
        (
            "pipeline.concept_primitive_links",
            report.concept_primitive_links as u64,
        ),
        (
            "pipeline.item_primitive_links",
            report.item_primitive_links as u64,
        ),
        (
            "pipeline.concept_item_links",
            report.concept_item_links as u64,
        ),
        ("pipeline.oracle_labels", report.oracle_labels),
    ] {
        metrics.counter(name).add(value);
    }
    (kg, report)
}

/// Placeholder seed mixer (kept separate so the constant is documented).
fn tag_placeholder() -> u64 {
    0x7a6
}

#[cfg(test)]
mod tests {
    use super::*;
    use alicoco::Stats;

    fn fast_config() -> PipelineConfig {
        PipelineConfig {
            miner: VocabMinerConfig {
                train: VocabMinerConfig::default().train.with_epochs(2),
                ..Default::default()
            },
            projection: ProjectionConfig {
                train: ProjectionConfig::default().train.with_epochs(3),
                ..Default::default()
            },
            classifier: ClassifierConfig {
                train: ClassifierConfig::full().train.with_epochs(4),
                ..ClassifierConfig::full()
            },
            tagger: TaggerConfig {
                train: TaggerConfig::full().train.with_epochs(2),
                ..TaggerConfig::full()
            },
            matcher: OursConfig {
                train: OursConfig::default().train.with_epochs(1),
                ..Default::default()
            },
            pattern_candidates: 150,
            item_candidates: 15,
            ..Default::default()
        }
    }

    #[test]
    fn pipeline_builds_a_complete_net() {
        let ds = Dataset::tiny();
        let (kg, report) = build_alicoco(&ds, &fast_config());
        let stats = Stats::compute(&kg);
        assert!(stats.num_classes > 20, "taxonomy missing: {stats:?}");
        assert!(
            stats.num_primitives > 200,
            "too few primitives: {}",
            stats.num_primitives
        );
        assert!(report.primitives_mined > 0, "mining admitted nothing");
        assert!(
            stats.num_concepts > 20,
            "too few concepts: {}",
            stats.num_concepts
        );
        assert!(
            stats.is_a_primitive > 50,
            "too few isA edges: {}",
            stats.is_a_primitive
        );
        assert!(report.concept_primitive_links > 20);
        assert!(stats.item_concept_links > 0, "no concept-item links");
        assert!(stats.item_primitive_links > 500);
        assert!(report.oracle_labels > 0);
        // Every linked item weight is a probability (checked by the graph's
        // own assertion; re-check one edge end-to-end).
        let c = kg
            .concept_ids()
            .find(|&c| !kg.concept(c).items.is_empty())
            .expect("some concept has items");
        let (_, w) = kg.concept(c).items[0];
        assert!((0.0..=1.0).contains(&w));
    }

    #[test]
    fn pipeline_concepts_are_mostly_good() {
        let ds = Dataset::tiny();
        let (kg, _) = build_alicoco(&ds, &fast_config());
        let oracle = Oracle::new(&ds.world);
        let mut good = 0;
        let mut total = 0;
        for c in kg.concept_ids() {
            let tokens: Vec<String> = kg.concept(c).name.split(' ').map(String::from).collect();
            total += 1;
            if oracle.label_concept(&tokens) {
                good += 1;
            }
        }
        assert!(total > 0);
        assert!(
            good as f64 / total as f64 > 0.6,
            "admitted concept precision too low: {good}/{total}"
        );
    }
}
