//! The server proper: accept loop, bounded dispatch queue, fixed worker
//! pool, keep-alive connection handling with deadlines, and graceful
//! drain.
//!
//! Memory is bounded by construction: at most `queue_capacity` accepted
//! connections wait behind at most `workers` in-flight ones, and every
//! connection past that is answered with a fast `503` and closed. Time
//! is bounded by socket deadlines: a client that stalls mid-request is
//! shed at the read timeout, so no slow-loris holds a worker.
//!
//! Connection accounting is exact: every accepted connection ends in
//! exactly one of `completed` (ran to a clean end, typed error responses
//! included), `rejected` (503 at the queue), or `shed` (abandoned at a
//! read deadline or write failure) — `accepted = completed + rejected +
//! shed` is asserted by the lifecycle suite against `/metrics`.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use alicoco_obs::{Counter, Gauge, Histogram, Registry, Stopwatch};

use crate::http::{HttpError, Limits, Method, Request, RequestParser, Response};
use crate::json;
use crate::router::{self, RouteKey};
use crate::state::PackSlot;

/// Server tunables. Defaults suit the smoke workload; the fault
/// injection tests shrink them hard to force each edge.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free one.
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker. Together with
    /// `workers` this caps open connections at `workers + queue`.
    pub queue_capacity: usize,
    /// Per-read socket deadline; a client stalled mid-request this long
    /// is shed.
    pub read_timeout: Duration,
    /// Per-write socket deadline.
    pub write_timeout: Duration,
    /// Keep-alive cap: requests served per connection before a forced
    /// close, so one client cannot pin a worker forever.
    pub max_requests_per_connection: usize,
    /// Graceful-shutdown budget for draining queued + in-flight work.
    pub drain_deadline: Duration,
    /// Parser limits.
    pub limits: Limits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_requests_per_connection: 1000,
            drain_deadline: Duration::from_secs(5),
            limits: Limits::default(),
        }
    }
}

/// Why a connection ended; maps one-to-one onto the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Completed,
    Shed,
}

/// Per-route metric handles, registered once at server start.
struct RouteMetrics {
    latency_ns: Arc<Histogram>,
    status_2xx: Arc<Counter>,
    status_4xx: Arc<Counter>,
    status_5xx: Arc<Counter>,
}

impl RouteMetrics {
    fn register(registry: &Registry, route: &str) -> Self {
        RouteMetrics {
            latency_ns: registry.histogram(&format!("serve.{route}.latency_ns")),
            status_2xx: registry.counter(&format!("serve.{route}.status_2xx")),
            status_4xx: registry.counter(&format!("serve.{route}.status_4xx")),
            status_5xx: registry.counter(&format!("serve.{route}.status_5xx")),
        }
    }

    fn record(&self, ns: u64, status: u16) {
        self.latency_ns.record(ns);
        self.record_status(status);
    }

    fn record_status(&self, status: u16) {
        match status / 100 {
            2 => self.status_2xx.inc(),
            4 => self.status_4xx.inc(),
            5 => self.status_5xx.inc(),
            _ => {}
        }
    }
}

/// Connection-level counters (see the module docs for the identity).
struct ConnCounters {
    accepted: Arc<Counter>,
    completed: Arc<Counter>,
    rejected: Arc<Counter>,
    shed: Arc<Counter>,
    queue_depth: Arc<Gauge>,
}

impl ConnCounters {
    fn register(registry: &Registry) -> Self {
        ConnCounters {
            accepted: registry.counter("serve.accepted"),
            completed: registry.counter("serve.completed"),
            rejected: registry.counter("serve.rejected"),
            shed: registry.counter("serve.shed"),
            queue_depth: registry.gauge("serve.queue_depth"),
        }
    }
}

/// One [`RouteMetrics`] per route key, as named fields so lookup is a
/// total `match` (no indexing on the panic-free path).
struct Routes {
    search: RouteMetrics,
    qa: RouteMetrics,
    recommend: RouteMetrics,
    relevance: RouteMetrics,
    healthz: RouteMetrics,
    metrics: RouteMetrics,
    other: RouteMetrics,
}

impl Routes {
    fn register(registry: &Registry) -> Self {
        Routes {
            search: RouteMetrics::register(registry, RouteKey::Search.name()),
            qa: RouteMetrics::register(registry, RouteKey::Qa.name()),
            recommend: RouteMetrics::register(registry, RouteKey::Recommend.name()),
            relevance: RouteMetrics::register(registry, RouteKey::Relevance.name()),
            healthz: RouteMetrics::register(registry, RouteKey::Healthz.name()),
            metrics: RouteMetrics::register(registry, RouteKey::Metrics.name()),
            other: RouteMetrics::register(registry, RouteKey::Other.name()),
        }
    }

    fn for_key(&self, key: RouteKey) -> &RouteMetrics {
        match key {
            RouteKey::Search => &self.search,
            RouteKey::Qa => &self.qa,
            RouteKey::Recommend => &self.recommend,
            RouteKey::Relevance => &self.relevance,
            RouteKey::Healthz => &self.healthz,
            RouteKey::Metrics => &self.metrics,
            RouteKey::Other => &self.other,
        }
    }
}

/// Dispatch queue plus the drain bookkeeping the shutdown path waits on.
struct QueueState {
    conns: VecDeque<TcpStream>,
    /// Workers currently handling a connection.
    active: usize,
}

/// Everything the accept loop, workers, and shutdown path share.
struct Shared {
    slot: Arc<PackSlot>,
    cfg: ServeConfig,
    metrics: Registry,
    shutdown: AtomicBool,
    queue: Mutex<QueueState>,
    /// Workers wait here for connections.
    wake: Condvar,
    /// The shutdown path waits here for the queue to drain.
    idle: Condvar,
    counters: ConnCounters,
    routes: Routes,
}

impl Shared {
    fn route_metrics(&self, key: RouteKey) -> &RouteMetrics {
        self.routes.for_key(key)
    }
}

/// A running server. Dropping it without calling
/// [`shutdown`](Server::shutdown) leaves the threads detached.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// What the graceful shutdown observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Whether every queued and in-flight connection finished within
    /// [`ServeConfig::drain_deadline`].
    pub drained: bool,
    /// Connections accepted over the server's life.
    pub accepted: u64,
    /// Connections that ran to a clean end.
    pub completed: u64,
    /// Connections answered `503` at the queue.
    pub rejected: u64,
    /// Connections abandoned at a deadline or write failure.
    pub shed: u64,
}

impl Server {
    /// Bind, spawn the accept loop and `cfg.workers` workers, and start
    /// serving the slot's current pack.
    pub fn start(slot: Arc<PackSlot>, cfg: ServeConfig, metrics: Registry) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let n_workers = cfg.workers.max(1);
        let routes = Routes::register(&metrics);
        let shared = Arc::new(Shared {
            slot,
            counters: ConnCounters::register(&metrics),
            cfg,
            metrics,
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(QueueState {
                conns: VecDeque::new(),
                active: 0,
            }),
            wake: Condvar::new(),
            idle: Condvar::new(),
            routes,
        });
        let accept = {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(&s, listener))?
        };
        let mut workers = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let s = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&s))?,
            );
        }
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry `/metrics` exports.
    pub fn metrics(&self) -> &Registry {
        &self.shared.metrics
    }

    /// Graceful shutdown: stop accepting, serve what is queued, let
    /// in-flight connections finish (their next response closes), and
    /// join everything — all within `drain_deadline`.
    pub fn shutdown(mut self) -> ShutdownReport {
        // Flag first, under the queue lock, so no worker can check the
        // flag and then miss the wake-up.
        {
            let _guard = lock(&self.shared.queue);
            self.shared.shutdown.store(true, Ordering::SeqCst);
            self.shared.wake.notify_all();
        }
        // Poke the listener so a blocked accept() observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let drained = self.shared.wait_drained();
        if drained {
            for handle in std::mem::take(&mut self.workers) {
                let _ = handle.join();
            }
        }
        // If the drain deadline passed, leave stragglers detached —
        // they hold no lock a future server would need.
        let c = &self.shared.counters;
        ShutdownReport {
            drained,
            accepted: c.accepted.get(),
            completed: c.completed.get(),
            rejected: c.rejected.get(),
            shed: c.shed.get(),
        }
    }
}

impl Shared {
    /// Queue an accepted connection, or hand it back when full.
    fn enqueue(&self, stream: TcpStream) -> Option<TcpStream> {
        let mut q = lock(&self.queue);
        if q.conns.len() >= self.cfg.queue_capacity {
            return Some(stream);
        }
        q.conns.push_back(stream);
        self.counters.queue_depth.set(q.conns.len() as f64);
        self.wake.notify_one();
        None
    }

    /// Fast best-effort `503` for a connection the queue cannot hold.
    fn reject(&self, mut stream: TcpStream) {
        self.counters.rejected.inc();
        self.route_metrics(RouteKey::Other).record_status(503);
        let resp = Response::json(503, json::render_error(503, "server overloaded")).closing();
        let _ = stream.set_write_timeout(Some(self.cfg.write_timeout));
        let _ = stream.write_all(&resp.encode(false));
        let _ = stream.shutdown(Shutdown::Both);
    }

    /// Block until a connection is available or shutdown drains the
    /// queue dry; `None` tells the worker to exit.
    fn next_conn(&self) -> Option<TcpStream> {
        let mut q = lock(&self.queue);
        loop {
            if let Some(stream) = q.conns.pop_front() {
                q.active += 1;
                self.counters.queue_depth.set(q.conns.len() as f64);
                return Some(stream);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            q = self
                .wake
                .wait(q)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Mark a connection finished and wake the drain waiter.
    fn conn_done(&self) {
        let mut q = lock(&self.queue);
        q.active = q.active.saturating_sub(1);
        let drained = q.conns.is_empty() && q.active == 0;
        drop(q);
        if drained {
            self.idle.notify_all();
        }
    }

    /// Wait until queued + active connections hit zero, bounded by the
    /// drain deadline. Returns whether the drain finished in time.
    fn wait_drained(&self) -> bool {
        let watch = Stopwatch::start();
        let mut q = lock(&self.queue);
        loop {
            if q.conns.is_empty() && q.active == 0 {
                return true;
            }
            let left = watch.remaining(self.cfg.drain_deadline);
            if left.is_zero() {
                return false;
            }
            let (guard, _timeout) = self
                .idle
                .wait_timeout(q, left)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            q = guard;
        }
    }
}

fn lock(queue: &Mutex<QueueState>) -> MutexGuard<'_, QueueState> {
    queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The shutdown poke (or a late client) lands here; either
            // way it was never part of the workload.
            return;
        }
        shared.counters.accepted.inc();
        if let Some(stream) = shared.enqueue(stream) {
            shared.reject(stream);
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.next_conn() {
        let outcome = handle_connection(shared, stream);
        match outcome {
            Outcome::Completed => shared.counters.completed.inc(),
            Outcome::Shed => shared.counters.shed.inc(),
        }
        shared.conn_done();
    }
}

/// What one attempt to produce the next request yielded.
enum NextRequest {
    Request(Request),
    /// Clean EOF between requests.
    Eof,
    /// Read deadline fired; `mid` is whether a request was in progress.
    Timeout {
        mid: bool,
    },
    /// Hard I/O error.
    Failed,
    /// Typed protocol error.
    Protocol(HttpError),
}

fn next_request(parser: &mut RequestParser, stream: &mut TcpStream) -> NextRequest {
    let mut chunk = [0u8; 4096];
    loop {
        match parser.poll() {
            Ok(Some(req)) => return NextRequest::Request(req),
            Ok(None) => {}
            Err(e) => return NextRequest::Protocol(e),
        }
        match stream.read(&mut chunk) {
            Ok(0) => return NextRequest::Eof,
            Ok(n) => parser.push(chunk.get(..n).unwrap_or(&[])),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return NextRequest::Timeout {
                    mid: parser.mid_request(),
                }
            }
            Err(_) => return NextRequest::Failed,
        }
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) -> Outcome {
    let cfg = &shared.cfg;
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut parser = RequestParser::new(cfg.limits);
    let mut served = 0usize;
    let outcome = loop {
        let req = match next_request(&mut parser, &mut stream) {
            NextRequest::Request(req) => req,
            NextRequest::Eof => break Outcome::Completed,
            NextRequest::Timeout { mid: true } => {
                // Slow-loris: a best-effort 408, then shed.
                let resp = Response::json(408, json::render_error(408, "read deadline exceeded"))
                    .closing();
                shared.route_metrics(RouteKey::Other).record_status(408);
                let _ = stream.write_all(&resp.encode(false));
                break Outcome::Shed;
            }
            NextRequest::Timeout { mid: false } => {
                // Idle keep-alive connection: close it quietly.
                break Outcome::Completed;
            }
            NextRequest::Failed => {
                break if parser.mid_request() {
                    Outcome::Shed
                } else {
                    Outcome::Completed
                }
            }
            NextRequest::Protocol(err) => {
                let status = err.status();
                let resp =
                    Response::json(status, json::render_error(status, err.reason())).closing();
                shared.route_metrics(RouteKey::Other).record_status(status);
                let _ = stream.write_all(&resp.encode(false));
                break Outcome::Completed;
            }
        };
        served += 1;
        let head_only = req.method == Method::Head;
        let watch = Stopwatch::start();
        let pack = shared.slot.get();
        let (key, mut resp) = router::handle(&req, &pack, &shared.metrics);
        let closing = !req.keep_alive
            || served >= cfg.max_requests_per_connection
            || shared.shutdown.load(Ordering::SeqCst);
        resp.close = resp.close || closing;
        shared
            .route_metrics(key)
            .record(watch.elapsed_ns(), resp.status);
        if stream.write_all(&resp.encode(head_only)).is_err() {
            break Outcome::Shed;
        }
        if resp.close {
            break Outcome::Completed;
        }
    };
    let _ = stream.shutdown(Shutdown::Both);
    outcome
}
