//! Route dispatch: map a parsed request to one engine call and one
//! deterministic JSON response. Every failure is a typed status — bad
//! parameters are `400`, unknown paths `404`, wrong methods `405` — and
//! nothing here can panic (AL001/AL007 scope covers this crate).

use alicoco::ItemId;
use alicoco_obs::Registry;

use crate::http::{Method, Request, Response};
use crate::json;
use crate::state::ServingPack;

/// The metric identity of a request: one of the six served routes, or
/// `Other` for unknown paths and pre-route protocol errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKey {
    /// `/search`
    Search,
    /// `/qa`
    Qa,
    /// `/recommend`
    Recommend,
    /// `/relevance`
    Relevance,
    /// `/healthz`
    Healthz,
    /// `/metrics`
    Metrics,
    /// Unknown paths and protocol-level failures.
    Other,
}

impl RouteKey {
    /// Metric name segment (`serve.<name>.…`).
    pub fn name(self) -> &'static str {
        match self {
            RouteKey::Search => "search",
            RouteKey::Qa => "qa",
            RouteKey::Recommend => "recommend",
            RouteKey::Relevance => "relevance",
            RouteKey::Healthz => "healthz",
            RouteKey::Metrics => "metrics",
            RouteKey::Other => "other",
        }
    }

    /// Every key, in metric-registration order.
    pub fn all() -> [RouteKey; 7] {
        [
            RouteKey::Search,
            RouteKey::Qa,
            RouteKey::Recommend,
            RouteKey::Relevance,
            RouteKey::Healthz,
            RouteKey::Metrics,
            RouteKey::Other,
        ]
    }
}

/// Largest accepted `k=` parameter; beyond this is a `400`, not a
/// silent clamp, so misconfigured clients hear about it.
const MAX_K: usize = 1000;

/// Every route is read-only: the one `Allow` set, answered to OPTIONS
/// probes (`204`) and attached to `405`s.
const ALLOWED_METHODS: &str = "GET, HEAD, OPTIONS";

/// Dispatch one request. `metrics` is the registry `/metrics` exports.
pub fn handle(req: &Request, pack: &ServingPack, metrics: &Registry) -> (RouteKey, Response) {
    let (path, query) = match req.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.target.as_str(), ""),
    };
    let key = match path {
        "/search" => RouteKey::Search,
        "/qa" => RouteKey::Qa,
        "/recommend" => RouteKey::Recommend,
        "/relevance" => RouteKey::Relevance,
        "/healthz" => RouteKey::Healthz,
        "/metrics" => RouteKey::Metrics,
        _ => {
            return (
                RouteKey::Other,
                Response::json(404, json::render_error(404, "no such route")),
            )
        }
    };
    if req.method == Method::Options {
        // Capability probe: no body, no query validation, just the verbs.
        return (
            key,
            Response::json(204, String::new()).with_allow(ALLOWED_METHODS),
        );
    }
    if req.method == Method::Post {
        return (
            key,
            Response::json(405, json::render_error(405, "method not allowed"))
                .with_allow(ALLOWED_METHODS),
        );
    }
    let params = match parse_query(query) {
        Ok(p) => p,
        Err(msg) => return (key, Response::json(400, json::render_error(400, msg))),
    };
    let resp = match key {
        RouteKey::Healthz => Response::json(200, json::render_health()),
        RouteKey::Metrics => Response::json(200, metrics.export_json()),
        RouteKey::Search => match route_search(&params, pack) {
            Ok(body) => Response::json(200, body),
            Err((status, msg)) => Response::json(status, json::render_error(status, msg)),
        },
        RouteKey::Qa => match require(&params, "q") {
            Ok(q) => Response::json(200, json::render_qa(pack.qa().answer(q).as_ref())),
            Err((status, msg)) => Response::json(status, json::render_error(status, msg)),
        },
        RouteKey::Recommend => match route_recommend(&params, pack) {
            Ok(body) => Response::json(200, body),
            Err((status, msg)) => Response::json(status, json::render_error(status, msg)),
        },
        RouteKey::Relevance => match route_relevance(&params, pack) {
            Ok(body) => Response::json(200, body),
            Err((status, msg)) => Response::json(status, json::render_error(status, msg)),
        },
        RouteKey::Other => Response::json(404, json::render_error(404, "no such route")),
    };
    (key, resp)
}

type RouteError = (u16, &'static str);

fn route_search(params: &[(String, String)], pack: &ServingPack) -> Result<String, RouteError> {
    let q = require(params, "q")?;
    let cards = match opt_k(params)? {
        Some(k) => pack.search().search_top(q, k),
        None => pack.search().search(q),
    };
    Ok(json::render_search(&cards))
}

fn route_recommend(params: &[(String, String)], pack: &ServingPack) -> Result<String, RouteError> {
    let mut history: Vec<ItemId> = Vec::new();
    if let Some(raw) = lookup(params, "history") {
        for tok in raw.split(',').filter(|t| !t.is_empty()) {
            let idx: usize = tok
                .trim()
                .parse()
                .map_err(|_| (400, "history: item ids must be decimal integers"))?;
            if idx >= pack.graph().num_items() {
                return Err((400, "history: item id out of range"));
            }
            history.push(ItemId::from_index(idx));
        }
    }
    let mut recs = pack.recommender().recommend(&history);
    if let Some(k) = opt_k(params)? {
        recs.truncate(k);
    }
    Ok(json::render_recommend(pack.graph(), &recs))
}

fn route_relevance(params: &[(String, String)], pack: &ServingPack) -> Result<String, RouteError> {
    let q = require(params, "q")?;
    let words: Vec<String> = q.split_whitespace().map(str::to_string).collect();
    let k = opt_k(params)?.unwrap_or(10);
    let hits = pack.relevance().top_items_expanded(&words, k);
    Ok(json::render_relevance(pack.graph(), &hits))
}

fn lookup<'a>(params: &'a [(String, String)], name: &str) -> Option<&'a str> {
    params
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn require<'a>(params: &'a [(String, String)], name: &'static str) -> Result<&'a str, RouteError> {
    lookup(params, name).ok_or((400, "missing parameter: q"))
}

fn opt_k(params: &[(String, String)]) -> Result<Option<usize>, RouteError> {
    let Some(raw) = lookup(params, "k") else {
        return Ok(None);
    };
    let k: usize = raw
        .parse()
        .map_err(|_| (400, "k: must be a decimal integer"))?;
    if k == 0 || k > MAX_K {
        return Err((400, "k: out of range"));
    }
    Ok(Some(k))
}

/// Split `a=1&b=two+words` into decoded pairs. `+` means space and
/// `%XX` escapes are decoded in both names and values; malformed
/// escapes or non-UTF-8 decoded bytes are a `400`.
pub fn parse_query(query: &str) -> Result<Vec<(String, String)>, &'static str> {
    let mut out = Vec::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (name, value) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(name)?, percent_decode(value)?));
    }
    Ok(out)
}

fn percent_decode(s: &str) -> Result<String, &'static str> {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0usize;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'%' => {
                let hi = bytes.get(i + 1).copied().and_then(hex_val);
                let lo = bytes.get(i + 2).copied().and_then(hex_val);
                match (hi, lo) {
                    (Some(hi), Some(lo)) => {
                        out.push(hi * 16 + lo);
                        i += 3;
                    }
                    _ => return Err("malformed percent escape"),
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| "query is not valid utf-8")
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{EngineConfig, PackSlot, ServingPack};
    use alicoco::AliCoCo;
    use std::sync::Arc;

    fn demo_pack() -> Arc<ServingPack> {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("concept", None);
        let loc = kg.add_class("Location", Some(root));
        let event = kg.add_class("Event", Some(root));
        let outdoor = kg.add_primitive("outdoor", loc);
        let bbq = kg.add_primitive("barbecue", event);
        let c1 = kg.add_concept("outdoor barbecue");
        kg.link_concept_primitive(c1, outdoor);
        kg.link_concept_primitive(c1, bbq);
        let grill = kg.add_item(&["brand".into(), "grill".into()]);
        let charcoal = kg.add_item(&["best".into(), "charcoal".into()]);
        kg.link_concept_item(c1, grill, 0.9);
        kg.link_concept_item(c1, charcoal, 0.8);
        kg.link_item_primitive(grill, bbq);
        ServingPack::build(Arc::new(kg), &EngineConfig::default(), &Registry::new())
    }

    fn get(target: &str) -> Request {
        Request {
            method: Method::Get,
            target: target.to_string(),
            keep_alive: true,
            body: Vec::new(),
        }
    }

    #[test]
    fn every_route_answers_200() {
        let pack = demo_pack();
        let reg = Registry::new();
        for target in [
            "/healthz",
            "/metrics",
            "/search?q=barbecue",
            "/qa?q=what+do+i+need+for+outdoor+barbecue",
            "/recommend?history=0",
            "/recommend",
            "/relevance?q=barbecue&k=5",
        ] {
            let (_, resp) = handle(&get(target), &pack, &reg);
            assert_eq!(
                resp.status,
                200,
                "{target}: {:?}",
                String::from_utf8_lossy(&resp.body)
            );
        }
    }

    #[test]
    fn search_route_equals_engine_answer() {
        let pack = demo_pack();
        let (key, resp) = handle(&get("/search?q=outdoor+barbecue"), &pack, &Registry::new());
        assert_eq!(key, RouteKey::Search);
        let expected = json::render_search(&pack.search().search("outdoor barbecue"));
        assert_eq!(resp.body, expected.into_bytes());
    }

    #[test]
    fn typed_route_failures() {
        let pack = demo_pack();
        let reg = Registry::new();
        let cases = [
            ("/nope", 404),
            ("/search", 400),                 // missing q
            ("/search?q=x&k=0", 400),         // k out of range
            ("/search?q=x&k=boom", 400),      // k not a number
            ("/search?q=%zz", 400),           // bad escape
            ("/recommend?history=9999", 400), // out-of-range item
            ("/recommend?history=a,b", 400),  // non-numeric ids
        ];
        for (target, status) in cases {
            let (_, resp) = handle(&get(target), &pack, &reg);
            assert_eq!(resp.status, status, "{target}");
        }
        let mut post = get("/search?q=x");
        post.method = Method::Post;
        let (_, resp) = handle(&post, &pack, &reg);
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn options_probes_answer_204_with_allow() {
        let pack = demo_pack();
        let reg = Registry::new();
        for target in [
            "/healthz",
            "/metrics",
            "/search", // no query needed for a probe
            "/qa",
            "/recommend",
            "/relevance",
        ] {
            let mut req = get(target);
            req.method = Method::Options;
            let (_, resp) = handle(&req, &pack, &reg);
            assert_eq!(resp.status, 204, "{target}");
            assert_eq!(resp.allow, Some("GET, HEAD, OPTIONS"), "{target}");
            assert!(resp.body.is_empty(), "{target}");
        }
        // Unknown paths stay 404 even for OPTIONS.
        let mut req = get("/nope");
        req.method = Method::Options;
        assert_eq!(handle(&req, &pack, &reg).1.status, 404);
        // 405s advertise the allowed set too.
        let mut post = get("/search?q=x");
        post.method = Method::Post;
        let (_, resp) = handle(&post, &pack, &reg);
        assert_eq!(resp.status, 405);
        assert_eq!(resp.allow, Some("GET, HEAD, OPTIONS"));
    }

    #[test]
    fn query_decoding() {
        assert_eq!(
            parse_query("q=a+b%21&k=3").unwrap(),
            vec![
                ("q".to_string(), "a b!".to_string()),
                ("k".to_string(), "3".to_string())
            ]
        );
        assert!(parse_query("q=%f").is_err());
    }

    #[test]
    fn slot_swap_changes_served_answers() {
        let reg = Registry::new();
        let slot = PackSlot::new(demo_pack());
        let before = handle(&get("/search?q=barbecue"), &slot.get(), &reg).1;
        assert!(String::from_utf8_lossy(&before.body).contains("outdoor barbecue"));
        slot.swap(ServingPack::build(
            Arc::new(AliCoCo::new()),
            &EngineConfig::default(),
            &reg,
        ));
        let after = handle(&get("/search?q=barbecue"), &slot.get(), &reg).1;
        assert_eq!(after.body, b"{\"cards\":[]}");
    }
}
