//! The shared serving state: one immutable concept net plus every engine
//! built over it, bundled into a [`ServingPack`] behind a swappable
//! [`PackSlot`]. Workers clone the current `Arc` per request and hold no
//! lock while serving, so a snapshot swap never blocks in-flight traffic
//! — old requests finish on the old pack, which frees itself when the
//! last clone drops.

use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use alicoco::AliCoCo;
use alicoco_ann::AnnBundle;
use alicoco_apps::qa::ScenarioQa;
use alicoco_apps::recommend::{CognitiveRecommender, RecommendConfig};
use alicoco_apps::relevance::RelevanceScorer;
use alicoco_apps::search::{SearchConfig, SemanticSearch};
use alicoco_obs::Registry;

/// Engine tunables for one pack.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Semantic-search tunables.
    pub search: SearchConfig,
    /// Recommender tunables.
    pub recommend: RecommendConfig,
}

/// An immutable net and the four serving engines indexed over it.
///
/// The engines borrow the net, so the struct is self-referential: the
/// borrows are extended to `'static` at construction and shrunk back at
/// every accessor, and the `Arc` they actually point into is owned by
/// the last field.
pub struct ServingPack {
    search: SemanticSearch<'static>,
    qa: ScenarioQa<'static>,
    recommend: CognitiveRecommender<'static>,
    relevance: RelevanceScorer<'static>,
    /// Declared after the engines: dropped last, so the `'static`
    /// borrows above never dangle.
    kg: Arc<AliCoCo>,
}

impl ServingPack {
    /// Build every engine over `kg`, registering metrics in `metrics`.
    pub fn build(kg: Arc<AliCoCo>, cfg: &EngineConfig, metrics: &Registry) -> Arc<Self> {
        Self::build_with_ann(kg, None, cfg, metrics)
    }

    /// [`build`](Self::build) with an optional retrieval bundle: when a
    /// snapshot carries the `AVOC`/`ACON`/`AITM` trailer, every engine
    /// gets the bundle attached and serves hybrid (lexical ∪ vector)
    /// candidates. The bundle owns its vectors — it never borrows the
    /// net, so attaching it adds nothing to the self-referential block
    /// below.
    pub fn build_with_ann(
        kg: Arc<AliCoCo>,
        ann: Option<Arc<AnnBundle>>,
        cfg: &EngineConfig,
        metrics: &Registry,
    ) -> Arc<Self> {
        let graph: &'static AliCoCo =
            // SAFETY: `graph` points into the heap allocation owned by
            // the `kg` field of the pack under construction. The
            // allocation's address is stable (`Arc` contents never
            // move), the net is immutable for the pack's whole life,
            // and field order guarantees every engine drops before the
            // `Arc` it borrows from. The fabricated `'static` never
            // escapes: all accessors shrink it back to `&self`.
            unsafe { &*Arc::as_ptr(&kg) };
        let mut search = SemanticSearch::with_metrics(graph, cfg.search, metrics);
        let mut qa = ScenarioQa::with_metrics(graph, metrics);
        let mut recommend = CognitiveRecommender::with_metrics(graph, cfg.recommend, metrics);
        let mut relevance = RelevanceScorer::with_metrics(graph, metrics);
        if let Some(bundle) = ann {
            search = search.with_ann(Arc::clone(&bundle));
            qa = qa.with_ann(Arc::clone(&bundle));
            recommend = recommend.with_ann(Arc::clone(&bundle));
            relevance = relevance.with_ann(bundle);
        }
        Arc::new(ServingPack {
            search,
            qa,
            recommend,
            relevance,
            kg,
        })
    }

    /// The net itself.
    pub fn graph(&self) -> &AliCoCo {
        &self.kg
    }

    /// Semantic-search engine.
    pub fn search(&self) -> &SemanticSearch<'_> {
        &self.search
    }

    /// Scenario question answering.
    pub fn qa(&self) -> &ScenarioQa<'_> {
        &self.qa
    }

    /// Cognitive recommender.
    pub fn recommender(&self) -> &CognitiveRecommender<'_> {
        &self.recommend
    }

    /// isA-expanded relevance scorer.
    pub fn relevance(&self) -> &RelevanceScorer<'_> {
        &self.relevance
    }
}

/// The server's one mutable cell: the current pack, swapped atomically
/// under a short-lived write lock.
pub struct PackSlot {
    current: RwLock<Arc<ServingPack>>,
}

impl PackSlot {
    /// Slot initially serving `pack`.
    pub fn new(pack: Arc<ServingPack>) -> Self {
        PackSlot {
            current: RwLock::new(pack),
        }
    }

    /// Clone the current pack handle. Cheap; callers hold no lock while
    /// they serve from the clone.
    pub fn get(&self) -> Arc<ServingPack> {
        let guard = read_lock(&self.current);
        Arc::clone(&guard)
    }

    /// Install a freshly built pack, returning the previous one.
    /// In-flight requests keep serving from the pack they cloned.
    pub fn swap(&self, pack: Arc<ServingPack>) -> Arc<ServingPack> {
        let mut guard = write_lock(&self.current);
        std::mem::replace(&mut *guard, pack)
    }
}

/// Read even if a writer panicked: the slot holds a plain pointer swap,
/// so a poisoned guard is still structurally sound.
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> AliCoCo {
        let mut kg = AliCoCo::new();
        let root = kg.add_class("concept", None);
        let event = kg.add_class("Event", Some(root));
        let bbq = kg.add_primitive("barbecue", event);
        let c = kg.add_concept("outdoor barbecue");
        kg.link_concept_primitive(c, bbq);
        let item = kg.add_item(&["brand".into(), "grill".into()]);
        kg.link_concept_item(c, item, 0.9);
        kg
    }

    #[test]
    fn pack_serves_after_the_building_scope_ends() {
        let pack = {
            let kg = Arc::new(tiny_net());
            ServingPack::build(kg, &EngineConfig::default(), &Registry::new())
        };
        let cards = pack.search().search("barbecue");
        assert_eq!(cards.len(), 1);
        assert_eq!(pack.graph().num_items(), 1);
    }

    #[test]
    fn swap_leaves_old_clones_serving() {
        let reg = Registry::new();
        let slot = PackSlot::new(ServingPack::build(
            Arc::new(tiny_net()),
            &EngineConfig::default(),
            &reg,
        ));
        let old = slot.get();
        let empty = Arc::new(AliCoCo::new());
        let prev = slot.swap(ServingPack::build(empty, &EngineConfig::default(), &reg));
        // The old handle still answers even though the slot moved on.
        assert_eq!(old.search().search("barbecue").len(), 1);
        assert_eq!(prev.graph().num_items(), 1);
        assert!(slot.get().search().search("barbecue").is_empty());
    }

    #[test]
    fn packs_cross_threads() {
        let pack = ServingPack::build(
            Arc::new(tiny_net()),
            &EngineConfig::default(),
            &Registry::new(),
        );
        let p = Arc::clone(&pack);
        let n = std::thread::spawn(move || p.search().search("barbecue").len())
            .join()
            .unwrap();
        assert_eq!(n, 1);
    }
}
