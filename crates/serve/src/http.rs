//! Hand-rolled incremental HTTP/1.1 request parsing with strict limits,
//! plus the matching response encoder.
//!
//! The parser is a pure function of the bytes fed so far: feeding the
//! same stream in different chunkings always yields the same sequence of
//! parses and errors (the property suite drives this with random split
//! points). Every malformed input maps to a typed [`HttpError`] carrying
//! exactly one response status — nothing on this path can panic, which
//! is what lets AL001/AL007 extend their panic-free guarantee to the
//! connection loop.

use std::fmt;

/// Hard ceilings enforced while request bytes accumulate, so a hostile
/// client can grow neither the head buffer nor the body without bound.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Max bytes of request line + headers, terminators included.
    pub max_head_bytes: usize,
    /// Max number of header lines.
    pub max_headers: usize,
    /// Max bytes of the request target (path + query string).
    pub max_target_bytes: usize,
    /// Max declared `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 8 * 1024,
            max_headers: 64,
            max_target_bytes: 2 * 1024,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// Request methods the routes serve. Anything else is a typed error:
/// a recognizable-but-unsupported token maps to `501`, garbage to `400`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read a resource.
    Get,
    /// Like GET but the response carries headers only.
    Head,
    /// Capability probe: routes answer `204` with an `Allow` header.
    Options,
    /// Accepted by the parser so routes can answer `405` deliberately.
    Post,
}

/// One fully parsed request, body included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Parsed method.
    pub method: Method,
    /// Raw request target (`/search?q=grill`), percent-encoded.
    pub target: String,
    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults on, HTTP/1.0 off, `Connection:` overrides.
    pub keep_alive: bool,
    /// Request body (exactly `Content-Length` bytes; empty if absent).
    pub body: Vec<u8>,
}

/// Typed protocol errors. Each maps to exactly one response status via
/// [`status`](HttpError::status); the connection closes after reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Request line + headers exceeded [`Limits::max_head_bytes`] or
    /// [`Limits::max_headers`]. → `431`
    HeadTooLarge,
    /// Request line is not `METHOD SP TARGET SP HTTP/x.y`. → `400`
    BadRequestLine,
    /// Target does not start with `/`, is overlong, or contains control
    /// bytes. → `400`
    BadTarget,
    /// A well-formed token naming a method the server does not
    /// implement. → `501`
    UnknownMethod(String),
    /// A version other than HTTP/1.0 or HTTP/1.1. → `505`
    BadVersion,
    /// Header line without a colon or with an empty name. → `400`
    BadHeader,
    /// More than one `Content-Length` header (smuggling vector). → `400`
    DuplicateContentLength,
    /// `Content-Length` is not a plain decimal integer. → `400`
    BadContentLength,
    /// Declared body exceeds [`Limits::max_body_bytes`]. → `413`
    BodyTooLarge,
    /// `Transfer-Encoding` is not supported at all. → `501`
    UnsupportedTransferEncoding,
}

impl HttpError {
    /// The one response status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::UnknownMethod(_) | HttpError::UnsupportedTransferEncoding => 501,
            HttpError::BadVersion => 505,
            HttpError::BadRequestLine
            | HttpError::BadTarget
            | HttpError::BadHeader
            | HttpError::DuplicateContentLength
            | HttpError::BadContentLength => 400,
        }
    }

    /// Short machine-stable description for the error body.
    pub fn reason(&self) -> &'static str {
        match self {
            HttpError::HeadTooLarge => "request head too large",
            HttpError::BadRequestLine => "malformed request line",
            HttpError::BadTarget => "malformed request target",
            HttpError::UnknownMethod(_) => "method not implemented",
            HttpError::BadVersion => "http version not supported",
            HttpError::BadHeader => "malformed header",
            HttpError::DuplicateContentLength => "duplicate content-length",
            HttpError::BadContentLength => "malformed content-length",
            HttpError::BodyTooLarge => "body too large",
            HttpError::UnsupportedTransferEncoding => "transfer-encoding not supported",
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::UnknownMethod(m) => write!(f, "method not implemented: {m}"),
            other => f.write_str(other.reason()),
        }
    }
}

/// Parsed head, pending its body bytes.
#[derive(Debug)]
struct Head {
    method: Method,
    target: String,
    keep_alive: bool,
    body_len: usize,
    /// Offset into the parser buffer where the body starts.
    body_start: usize,
}

/// Incremental request parser. Feed bytes as they arrive; a request is
/// returned as soon as its head and declared body are complete, and
/// leftover bytes stay buffered for the next pipelined request.
#[derive(Debug)]
pub struct RequestParser {
    limits: Limits,
    buf: Vec<u8>,
    head: Option<Head>,
}

impl RequestParser {
    /// Empty parser with the given limits.
    pub fn new(limits: Limits) -> Self {
        RequestParser {
            limits,
            buf: Vec::new(),
            head: None,
        }
    }

    /// Append freshly read bytes without parsing.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// [`push`](Self::push) then [`poll`](Self::poll).
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        self.push(bytes);
        self.poll()
    }

    /// Try to complete one request from the buffered bytes. `Ok(None)`
    /// means more bytes are needed; errors are terminal for the
    /// connection.
    pub fn poll(&mut self) -> Result<Option<Request>, HttpError> {
        if self.head.is_none() {
            let Some(end) = find_head_end(&self.buf) else {
                if self.buf.len() > self.limits.max_head_bytes {
                    return Err(HttpError::HeadTooLarge);
                }
                return Ok(None);
            };
            if end > self.limits.max_head_bytes {
                return Err(HttpError::HeadTooLarge);
            }
            let head_bytes = self.buf.get(..end).unwrap_or(&[]);
            let mut head = parse_head(head_bytes, &self.limits)?;
            head.body_start = end;
            self.head = Some(head);
        }
        let Some(head) = &self.head else {
            return Ok(None);
        };
        let need = head.body_start.saturating_add(head.body_len);
        if self.buf.len() < need {
            return Ok(None);
        }
        let body = self
            .buf
            .get(head.body_start..need)
            .map(<[u8]>::to_vec)
            .unwrap_or_default();
        let req = Request {
            method: head.method,
            target: head.target.clone(),
            keep_alive: head.keep_alive,
            body,
        };
        self.head = None;
        let rest = self.buf.split_off(need);
        self.buf = rest;
        Ok(Some(req))
    }

    /// True while bytes of a not-yet-complete request are buffered — the
    /// connection loop uses this to tell a stalled mid-request client
    /// (shed with `408`) from an idle keep-alive one (closed quietly).
    pub fn mid_request(&self) -> bool {
        self.head.is_some() || !self.buf.is_empty()
    }
}

/// Index one past the first empty line (end of the head), if present.
/// Lines end at `\n`; one preceding `\r` is tolerated.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut line_start = 0usize;
    for (i, &b) in buf.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        let line = buf.get(line_start..i).unwrap_or(&[]);
        if strip_cr(line).is_empty() {
            return Some(i + 1);
        }
        line_start = i + 1;
    }
    None
}

fn strip_cr(line: &[u8]) -> &[u8] {
    line.strip_suffix(b"\r").unwrap_or(line)
}

fn parse_head(head: &[u8], limits: &Limits) -> Result<Head, HttpError> {
    let mut lines = head
        .split(|&b| b == b'\n')
        .map(strip_cr)
        .filter(|l| !l.is_empty());
    let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
    let (method, target, keep_alive_default) = parse_request_line(request_line, limits)?;

    let mut keep_alive = keep_alive_default;
    let mut body_len: Option<usize> = None;
    let mut n_headers = 0usize;
    for line in lines {
        n_headers += 1;
        if n_headers > limits.max_headers {
            return Err(HttpError::HeadTooLarge);
        }
        let colon = line
            .iter()
            .position(|&b| b == b':')
            .ok_or(HttpError::BadHeader)?;
        let name = line.get(..colon).unwrap_or(&[]);
        if name.is_empty() || !name.iter().all(|&b| b.is_ascii_graphic()) {
            return Err(HttpError::BadHeader);
        }
        let value = line.get(colon + 1..).unwrap_or(&[]);
        let value = String::from_utf8_lossy(value);
        let value = value.trim();
        let name = name.to_ascii_lowercase();
        match name.as_slice() {
            b"content-length" => {
                if body_len.is_some() || value.contains(',') {
                    return Err(HttpError::DuplicateContentLength);
                }
                let n: usize = value.parse().map_err(|_| HttpError::BadContentLength)?;
                if n > limits.max_body_bytes {
                    return Err(HttpError::BodyTooLarge);
                }
                body_len = Some(n);
            }
            b"transfer-encoding" => return Err(HttpError::UnsupportedTransferEncoding),
            b"connection" => {
                let v = value.to_ascii_lowercase();
                if v.split(',').any(|t| t.trim() == "close") {
                    keep_alive = false;
                } else if v.split(',').any(|t| t.trim() == "keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }
    Ok(Head {
        method,
        target,
        keep_alive,
        body_len: body_len.unwrap_or(0),
        body_start: 0,
    })
}

fn parse_request_line(line: &[u8], limits: &Limits) -> Result<(Method, String, bool), HttpError> {
    let text = std::str::from_utf8(line).map_err(|_| HttpError::BadRequestLine)?;
    let mut parts = text.split(' ').filter(|p| !p.is_empty());
    let (method_tok, target, version) =
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v), None) => (m, t, v),
            _ => return Err(HttpError::BadRequestLine),
        };
    let method = match method_tok {
        "GET" => Method::Get,
        "HEAD" => Method::Head,
        "OPTIONS" => Method::Options,
        "POST" => Method::Post,
        tok if tok.chars().all(|c| c.is_ascii_alphabetic()) && !tok.is_empty() => {
            let mut t = tok.to_string();
            t.truncate(16);
            return Err(HttpError::UnknownMethod(t));
        }
        _ => return Err(HttpError::BadRequestLine),
    };
    if !target.starts_with('/')
        || target.len() > limits.max_target_bytes
        || target.chars().any(|c| c.is_ascii_control())
    {
        return Err(HttpError::BadTarget);
    }
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => return Err(HttpError::BadVersion),
        _ => return Err(HttpError::BadRequestLine),
    };
    Ok((method, target.to_string(), keep_alive_default))
}

// ---------------------------------------------------------------- responses

/// A response ready to encode. Encoding is deterministic: fixed header
/// set, fixed (alphabetical) header order, one formatter for lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes (JSON for every route).
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Whether to announce and perform connection close.
    pub close: bool,
    /// Optional `Allow` header (OPTIONS probes and `405` responses).
    pub allow: Option<&'static str>,
}

impl Response {
    /// A JSON response that keeps the connection open.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            body: body.into_bytes(),
            content_type: "application/json",
            close: false,
            allow: None,
        }
    }

    /// Same, but closing the connection after the send.
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }

    /// Attach an `Allow` header listing the methods the route serves.
    pub fn with_allow(mut self, allow: &'static str) -> Self {
        self.allow = Some(allow);
        self
    }

    /// Canonical reason phrase for the status codes the server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Unknown",
        }
    }

    /// Encode status line + headers + body. `head_only` omits the body
    /// (HEAD) while keeping the `Content-Length` of the full response.
    pub fn encode(&self, head_only: bool) -> Vec<u8> {
        let mut out = String::with_capacity(96 + self.body.len());
        out.push_str("HTTP/1.1 ");
        out.push_str(&self.status.to_string());
        out.push(' ');
        out.push_str(Response::reason(self.status));
        if let Some(allow) = self.allow {
            out.push_str("\r\nallow: ");
            out.push_str(allow);
        }
        out.push_str("\r\nconnection: ");
        out.push_str(if self.close { "close" } else { "keep-alive" });
        out.push_str("\r\ncontent-length: ");
        out.push_str(&self.body.len().to_string());
        out.push_str("\r\ncontent-type: ");
        out.push_str(self.content_type);
        out.push_str("\r\n\r\n");
        let mut bytes = out.into_bytes();
        if !head_only {
            bytes.extend_from_slice(&self.body);
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        RequestParser::new(Limits::default()).feed(bytes)
    }

    #[test]
    fn simple_get_parses() {
        let req = parse_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.target, "/healthz");
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn body_is_collected_exactly() {
        let req = parse_all(b"POST /x HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn byte_at_a_time_equals_one_shot() {
        let stream = b"GET /search?q=grill HTTP/1.1\r\nconnection: close\r\n\r\n";
        let mut p = RequestParser::new(Limits::default());
        let mut trickled = None;
        for &b in stream.iter() {
            if let Some(r) = p.feed(&[b]).unwrap() {
                trickled = Some(r);
            }
        }
        assert_eq!(trickled, parse_all(stream).unwrap());
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut p = RequestParser::new(Limits::default());
        p.push(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(p.poll().unwrap().unwrap().target, "/a");
        assert_eq!(p.poll().unwrap().unwrap().target, "/b");
        assert_eq!(p.poll().unwrap(), None);
        assert!(!p.mid_request());
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn typed_errors_map_to_statuses() {
        let cases: &[(&[u8], u16)] = &[
            (b"FROB / HTTP/1.1\r\n\r\n", 501),
            (b"get / HTTP/1.1\r\n\r\n", 501),
            (b"GET / HTTP/2.0\r\n\r\n", 505),
            (b"GET nopath HTTP/1.1\r\n\r\n", 400),
            (b"GET /\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nbad line\r\n\r\n", 400),
            (
                b"GET / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 1\r\n\r\n",
                400,
            ),
            (b"GET / HTTP/1.1\r\ncontent-length: x\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n", 501),
        ];
        for (bytes, status) in cases {
            let err = parse_all(bytes).unwrap_err();
            assert_eq!(
                err.status(),
                *status,
                "{:?}",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let limits = Limits {
            max_head_bytes: 64,
            max_headers: 4,
            max_target_bytes: 32,
            max_body_bytes: 8,
        };
        let mut p = RequestParser::new(limits);
        let big = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "a".repeat(100));
        assert_eq!(p.feed(big.as_bytes()).unwrap_err(), HttpError::HeadTooLarge);

        let mut p = RequestParser::new(limits);
        assert_eq!(
            p.feed(b"POST / HTTP/1.1\r\ncontent-length: 9\r\n\r\n")
                .unwrap_err(),
            HttpError::BodyTooLarge
        );
    }

    #[test]
    fn head_limit_fires_before_terminator_arrives() {
        let limits = Limits {
            max_head_bytes: 32,
            ..Limits::default()
        };
        let mut p = RequestParser::new(limits);
        // Never send the blank line; the buffer cap must still trip.
        let r = p.feed(format!("GET /{} HTTP/1.1\r\n", "a".repeat(64)).as_bytes());
        assert_eq!(r.unwrap_err(), HttpError::HeadTooLarge);
    }

    #[test]
    fn options_requests_parse() {
        let req = parse_all(b"OPTIONS /search HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Options);
        assert_eq!(req.target, "/search");
    }

    #[test]
    fn allow_header_encodes_in_alphabetical_position() {
        let resp = Response::json(204, String::new()).with_allow("GET, HEAD, OPTIONS");
        let text = String::from_utf8(resp.encode(false)).unwrap();
        assert!(text.starts_with("HTTP/1.1 204 No Content\r\n"));
        let allow_at = text.find("allow:").unwrap();
        let conn_at = text.find("connection:").unwrap();
        assert!(allow_at < conn_at, "headers must stay alphabetical: {text}");
        assert!(text.contains("allow: GET, HEAD, OPTIONS\r\n"));
        // Absent allow leaves the header set untouched.
        let plain = Response::json(200, "{}".to_string());
        assert!(!String::from_utf8(plain.encode(false))
            .unwrap()
            .contains("allow:"));
    }

    #[test]
    fn encode_is_deterministic_and_head_only_drops_body() {
        let resp = Response::json(200, "{\"a\":1}".to_string());
        let full = resp.encode(false);
        assert_eq!(full, resp.encode(false));
        let head = resp.encode(true);
        assert!(full.ends_with(b"{\"a\":1}"));
        assert!(head.ends_with(b"\r\n\r\n"));
        let text = String::from_utf8(head).unwrap();
        assert!(text.contains("content-length: 7"));
    }
}
