//! Deterministic JSON rendering for route responses.
//!
//! The AL005 discipline applied to the wire: object keys are emitted in
//! a fixed alphabetical order, all numbers go through one formatter, and
//! nothing iterates a hash map — so the same engine answer always
//! renders to the same bytes (the property suite asserts this).

use alicoco::AliCoCo;
use alicoco_apps::qa::Answer;
use alicoco_apps::recommend::Recommendation;
use alicoco_apps::search::ConceptCard;

/// Escape and quote a string.
fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One formatter for every float on the wire; non-finite becomes `null`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// `{"cards":[{"concept":…,"interpretation":[[domain,surface],…],
/// "items":[[id,weight],…],"name":…,"score":…},…]}`
pub fn render_search(cards: &[ConceptCard]) -> String {
    let mut o = String::from("{\"cards\":[");
    for (i, card) in cards.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str("{\"concept\":");
        o.push_str(&card.concept.index().to_string());
        o.push_str(",\"interpretation\":[");
        for (j, (domain, surface)) in card.interpretation.iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            o.push('[');
            push_str_lit(&mut o, domain);
            o.push(',');
            push_str_lit(&mut o, surface);
            o.push(']');
        }
        o.push_str("],\"items\":[");
        for (j, (item, w)) in card.items.iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            o.push('[');
            o.push_str(&item.index().to_string());
            o.push(',');
            push_f64(&mut o, f64::from(*w));
            o.push(']');
        }
        o.push_str("],\"name\":");
        push_str_lit(&mut o, &card.name);
        o.push_str(",\"score\":");
        push_f64(&mut o, card.score);
        o.push('}');
    }
    o.push_str("]}");
    o
}

/// `{"answer":null}` or `{"answer":{"checklist":[{"confidence":…,
/// "item":…,"title":…},…],"concept":…,"concept_name":…}}`
pub fn render_qa(answer: Option<&Answer>) -> String {
    let mut o = String::from("{\"answer\":");
    match answer {
        None => o.push_str("null"),
        Some(a) => {
            o.push_str("{\"checklist\":[");
            for (i, entry) in a.checklist.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                o.push_str("{\"confidence\":");
                push_f64(&mut o, f64::from(entry.confidence));
                o.push_str(",\"item\":");
                o.push_str(&entry.item.index().to_string());
                o.push_str(",\"title\":");
                push_str_lit(&mut o, &entry.title);
                o.push('}');
            }
            o.push_str("],\"concept\":");
            o.push_str(&a.concept.index().to_string());
            o.push_str(",\"concept_name\":");
            push_str_lit(&mut o, &a.concept_name);
            o.push('}');
        }
    }
    o.push('}');
    o
}

/// `{"recommendations":[{"affinity":…,"concept":…,"items":[[id,w],…],
/// "name":…,"reason":…},…]}` — `reason` is the human explanation text.
pub fn render_recommend(kg: &AliCoCo, recs: &[Recommendation]) -> String {
    let mut o = String::from("{\"recommendations\":[");
    for (i, rec) in recs.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str("{\"affinity\":");
        push_f64(&mut o, rec.affinity);
        o.push_str(",\"concept\":");
        o.push_str(&rec.concept.index().to_string());
        o.push_str(",\"items\":[");
        for (j, (item, w)) in rec.items.iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            o.push('[');
            o.push_str(&item.index().to_string());
            o.push(',');
            push_f64(&mut o, f64::from(*w));
            o.push(']');
        }
        o.push_str("],\"name\":");
        push_str_lit(&mut o, &rec.name);
        o.push_str(",\"reason\":");
        push_str_lit(&mut o, &rec.reason.text(kg, &rec.name));
        o.push('}');
    }
    o.push_str("]}");
    o
}

/// `{"hits":[{"item":…,"score":…,"title":…},…]}`
pub fn render_relevance(kg: &AliCoCo, hits: &[(alicoco::ItemId, f64)]) -> String {
    let mut o = String::from("{\"hits\":[");
    for (i, (item, score)) in hits.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str("{\"item\":");
        o.push_str(&item.index().to_string());
        o.push_str(",\"score\":");
        push_f64(&mut o, *score);
        o.push_str(",\"title\":");
        push_str_lit(&mut o, &kg.item(*item).title.join(" "));
        o.push('}');
    }
    o.push_str("]}");
    o
}

/// `{"error":…,"status":…}` — the body of every non-2xx response.
pub fn render_error(status: u16, message: &str) -> String {
    let mut o = String::from("{\"error\":");
    push_str_lit(&mut o, message);
    o.push_str(",\"status\":");
    o.push_str(&status.to_string());
    o.push('}');
    o
}

/// `{"status":"ok"}`
pub fn render_health() -> String {
    "{\"status\":\"ok\"}".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let mut o = String::new();
        push_str_lit(&mut o, "a\"b\\c\nd\u{1}");
        assert_eq!(o, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = String::new();
        push_f64(&mut o, f64::NAN);
        assert_eq!(o, "null");
    }

    #[test]
    fn error_body_is_fixed_shape() {
        assert_eq!(
            render_error(503, "queue full"),
            "{\"error\":\"queue full\",\"status\":503}"
        );
    }

    #[test]
    fn empty_collections_render_stably() {
        assert_eq!(render_search(&[]), "{\"cards\":[]}");
        assert_eq!(render_qa(None), "{\"answer\":null}");
        assert_eq!(render_health(), "{\"status\":\"ok\"}");
    }
}
