//! `alicoco-serve` — serve a concept-net snapshot over HTTP.
//!
//! ```text
//! alicoco-serve <snapshot> [--addr HOST:PORT] [--workers N] [--queue N]
//!               [--read-timeout-ms N] [--drain-ms N] [--shutdown-on-stdin]
//! ```
//!
//! The snapshot format (TSV or binary) is sniffed from its magic via
//! `core::store`. With `--shutdown-on-stdin` the process drains
//! gracefully when stdin reaches EOF — scriptable from CI and shells
//! (`alicoco-serve net.bin --shutdown-on-stdin < fifo`); without it the
//! server runs until killed.

use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use alicoco_obs::Registry;
use alicoco_serve::{EngineConfig, PackSlot, ServeConfig, Server, ServingPack};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("alicoco-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut snapshot: Option<&str> = None;
    let mut cfg = ServeConfig::default();
    let mut shutdown_on_stdin = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = flag_value(&mut it, "--addr")?.to_string(),
            "--workers" => cfg.workers = parse_flag(&mut it, "--workers")?,
            "--queue" => cfg.queue_capacity = parse_flag(&mut it, "--queue")?,
            "--read-timeout-ms" => {
                cfg.read_timeout = Duration::from_millis(parse_flag(&mut it, "--read-timeout-ms")?)
            }
            "--drain-ms" => {
                cfg.drain_deadline = Duration::from_millis(parse_flag(&mut it, "--drain-ms")?)
            }
            "--shutdown-on-stdin" => shutdown_on_stdin = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag: {flag}")),
            path => {
                if snapshot.replace(path).is_some() {
                    return Err("more than one snapshot path given".to_string());
                }
            }
        }
    }
    let path = snapshot.ok_or("usage: alicoco-serve <snapshot> [flags]")?;

    let metrics = Registry::new();
    let (kg, bundle) = alicoco_ann::load_file_with_bundle(std::path::Path::new(path), &metrics)
        .map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "alicoco-serve: loaded {path}: {} concepts, {} items, retrieval={}",
        kg.num_concepts(),
        kg.num_items(),
        if bundle.is_some() {
            "hybrid (lexical + vectors)"
        } else {
            "lexical"
        }
    );
    let pack = ServingPack::build_with_ann(
        Arc::new(kg),
        bundle.map(Arc::new),
        &EngineConfig::default(),
        &metrics,
    );
    let slot = Arc::new(PackSlot::new(pack));
    let server = Server::start(slot, cfg, metrics).map_err(|e| format!("bind: {e}"))?;
    eprintln!("alicoco-serve: listening on http://{}", server.local_addr());

    if shutdown_on_stdin {
        // Block until the controller closes our stdin, then drain.
        let mut sink = [0u8; 1024];
        let mut stdin = std::io::stdin().lock();
        while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
        let report = server.shutdown();
        eprintln!(
            "alicoco-serve: drained={} accepted={} completed={} rejected={} shed={}",
            report.drained, report.accepted, report.completed, report.rejected, report.shed
        );
        if !report.drained {
            return Err("drain deadline exceeded".to_string());
        }
        Ok(())
    } else {
        loop {
            std::thread::park();
        }
    }
}

fn flag_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a str, String> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_flag<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    flag_value(it, flag)?
        .parse()
        .map_err(|_| format!("{flag}: not a number"))
}
