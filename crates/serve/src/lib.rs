//! `alicoco-serve` — the network boundary of the workspace: a
//! dependency-free HTTP/1.1 service over `std::net` exposing the four
//! serving engines (`/search`, `/qa`, `/recommend`, `/relevance`) plus
//! `/healthz` and `/metrics` on a shared immutable `Arc`-swapped net
//! loaded from any snapshot format.
//!
//! Layering (DESIGN.md §11):
//! - [`http`] — incremental request parsing with strict limits, typed
//!   protocol errors, deterministic response encoding;
//! - [`router`] — one engine call and one sorted-key JSON body per
//!   request ([`json`] renders it);
//! - [`state`] — the self-referential engine pack and the swap slot;
//! - [`server`] — accept loop, bounded dispatch queue, worker pool,
//!   deadlines, and graceful drain.
//!
//! The whole crate sits inside the workspace lint's serving scope: no
//! panic is reachable from the connection path (AL001/AL007), all
//! timing flows through `alicoco_obs` (AL009), and every response body
//! renders with a fixed key order (AL005 discipline).

pub mod http;
pub mod json;
pub mod router;
pub mod server;
pub mod state;

pub use http::{HttpError, Limits, Method, Request, RequestParser, Response};
pub use router::RouteKey;
pub use server::{ServeConfig, Server, ShutdownReport};
pub use state::{EngineConfig, PackSlot, ServingPack};
