//! Fault-injection and lifecycle suite: overload, slow-loris shedding,
//! graceful shutdown, and the connection-accounting identity
//! `accepted = completed + rejected + shed` checked against `/metrics`.

mod common;

use std::io::{Read, Write};
use std::time::Duration;

use alicoco_bench::json::Json;
use alicoco_serve::ServeConfig;
use common::{connect, get, read_reply, start_server, test_cfg};

#[test]
fn slow_loris_is_shed_at_the_read_deadline_without_pinning_a_worker() {
    let server = start_server(ServeConfig {
        workers: 1,
        queue_capacity: 4,
        read_timeout: Duration::from_millis(150),
        ..test_cfg()
    });
    let mut loris = connect(&server);
    loris.write_all(b"GET /hea").unwrap(); // ...and then silence.
                                           // The single worker must shed the stalled client at the deadline:
                                           // it answers 408 and frees itself.
    let reply = read_reply(&mut loris).unwrap();
    assert_eq!(reply.status, 408);
    // Worker is free again: a healthy request is served promptly.
    assert_eq!(get(&server, "/healthz").status, 200);
    assert_eq!(server.metrics().counter("serve.shed").get(), 1);
    let report = server.shutdown();
    assert_eq!(report.shed, 1);
    assert_eq!(
        report.accepted,
        report.completed + report.rejected + report.shed
    );
}

#[test]
fn queue_full_rejects_with_503_while_in_flight_work_completes() {
    let server = start_server(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_secs(3),
        ..test_cfg()
    });
    // A occupies the single worker mid-request.
    let mut a = connect(&server);
    a.write_all(b"GET /search?q=barbecue HTTP/1.1\r\nconnec")
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));
    // B fills the one queue slot.
    let mut b = connect(&server);
    std::thread::sleep(Duration::from_millis(100));
    // C finds the queue full and is bounced immediately with 503.
    let mut c = connect(&server);
    let rejected = read_reply(&mut c).unwrap();
    assert_eq!(rejected.status, 503);
    assert_eq!(rejected.header("connection").as_deref(), Some("close"));
    // A finishes its request and still gets its answer.
    a.write_all(b"tion: close\r\n\r\n").unwrap();
    let done = read_reply(&mut a).unwrap();
    assert_eq!(done.status, 200);
    assert!(done.body_text().contains("outdoor barbecue"));
    // The worker then drains B from the queue.
    b.write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
        .unwrap();
    assert_eq!(read_reply(&mut b).unwrap().status, 200);
    let report = server.shutdown();
    assert_eq!(report.rejected, 1);
    assert_eq!(report.accepted, 3);
    assert_eq!(
        report.accepted,
        report.completed + report.rejected + report.shed
    );
}

#[test]
fn graceful_shutdown_drains_in_flight_and_refuses_new_connections() {
    let server = start_server(ServeConfig {
        workers: 2,
        read_timeout: Duration::from_secs(3),
        drain_deadline: Duration::from_secs(5),
        ..test_cfg()
    });
    let addr = server.local_addr();
    // A is mid-request when the shutdown starts.
    let mut a = connect(&server);
    a.write_all(b"GET /search?q=barbecue HTTP/1.1\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(200));
    // New connections are refused (or accepted by the backlog and then
    // dropped unanswered) once the accept loop has stopped.
    match std::net::TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut late) => {
            late.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let _ = late.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut sink = Vec::new();
            // Must see EOF/reset, never a served response.
            if late.read_to_end(&mut sink).is_ok() {
                assert!(sink.is_empty(), "late connection was served");
            }
        }
    }
    // A finishes sending; the drain serves it and closes the connection.
    a.write_all(b"\r\n").unwrap();
    let reply = read_reply(&mut a).unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("connection").as_deref(), Some("close"));
    let report = shutdown.join().unwrap();
    assert!(report.drained, "drain must finish inside the deadline");
    assert_eq!(report.accepted, 1);
    assert_eq!(report.completed, 1);
    assert_eq!(
        report.accepted,
        report.completed + report.rejected + report.shed
    );
}

#[test]
fn metrics_route_reconciles_with_the_final_report() {
    let server = start_server(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_millis(200),
        ..test_cfg()
    });
    // A mixed workload: two clean requests...
    assert_eq!(get(&server, "/search?q=barbecue").status, 200);
    assert_eq!(
        get(&server, "/qa?q=what+do+i+need+for+outdoor+barbecue").status,
        200
    );
    // ...one slow-loris shed...
    let mut loris = connect(&server);
    loris.write_all(b"GET /sl").unwrap();
    assert_eq!(read_reply(&mut loris).unwrap().status, 408);
    drop(loris);
    // ...and one queue rejection.
    let mut a = connect(&server);
    a.write_all(b"GET /he").unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let _b = connect(&server);
    let mut c = connect(&server);
    assert_eq!(read_reply(&mut c).unwrap().status, 503);
    // Let A's stall shed too, then read the metrics route itself.
    assert_eq!(read_reply(&mut a).unwrap().status, 408);
    let body = get(&server, "/metrics").body_text();
    let doc = Json::parse(&body).expect("/metrics must be valid JSON");
    let _ = &doc;
    for family in [
        "serve.accepted",
        "serve.completed",
        "serve.rejected",
        "serve.shed",
        "serve.queue_depth",
        "serve.search.latency_ns",
        "serve.search.status_2xx",
        "serve.other.status_5xx",
    ] {
        assert!(body.contains(family), "metrics export missing {family}");
    }
    let report = server.shutdown();
    assert!(report.drained);
    assert_eq!(report.rejected, 1);
    assert_eq!(report.shed, 2);
    assert_eq!(
        report.accepted,
        report.completed + report.rejected + report.shed,
        "accounting identity: {report:?}"
    );
}
