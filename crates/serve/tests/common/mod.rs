//! Shared fixture for the serve integration suites: a demo net covering
//! every serving path, a server factory with test-sized limits, and a
//! raw-socket HTTP client that reads exactly one response at a time
//! (keep-alive safe).
#![allow(dead_code)]

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use alicoco::AliCoCo;
use alicoco_obs::Registry;
use alicoco_serve::{EngineConfig, PackSlot, ServeConfig, Server, ServingPack};

/// The suite's demo net: one interpreted scenario concept with stocked
/// items, so `/search`, `/qa`, `/recommend`, and `/relevance` all have
/// non-trivial answers.
pub fn demo_net() -> AliCoCo {
    let mut kg = AliCoCo::new();
    let root = kg.add_class("concept", None);
    let loc = kg.add_class("Location", Some(root));
    let event = kg.add_class("Event", Some(root));
    let outdoor = kg.add_primitive("outdoor", loc);
    let bbq = kg.add_primitive("barbecue", event);
    let grill_prim = kg.add_primitive("grill", event);
    kg.add_primitive_is_a(grill_prim, bbq);
    let c1 = kg.add_concept("outdoor barbecue");
    kg.link_concept_primitive(c1, outdoor);
    kg.link_concept_primitive(c1, bbq);
    let _c2 = kg.add_concept("indoor yoga");
    let grill = kg.add_item(&["brand".into(), "grill".into()]);
    let charcoal = kg.add_item(&["best".into(), "charcoal".into()]);
    let skewers = kg.add_item(&["steel".into(), "skewers".into()]);
    kg.link_concept_item(c1, grill, 0.9);
    kg.link_concept_item(c1, charcoal, 0.8);
    kg.link_item_primitive(grill, bbq);
    kg.link_item_primitive(skewers, bbq);
    kg
}

/// Config with deadlines short enough to test against but long enough
/// that a healthy exchange never trips them.
pub fn test_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 8,
        read_timeout: Duration::from_millis(800),
        write_timeout: Duration::from_millis(800),
        drain_deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

/// Start a server over the demo net.
pub fn start_server(cfg: ServeConfig) -> Server {
    start_server_on(Arc::new(demo_net()), cfg)
}

/// Start a server over a given net.
pub fn start_server_on(kg: Arc<AliCoCo>, cfg: ServeConfig) -> Server {
    let metrics = Registry::new();
    let pack = ServingPack::build(kg, &EngineConfig::default(), &metrics);
    let slot = Arc::new(PackSlot::new(pack));
    Server::start(slot, cfg, metrics).expect("bind test server")
}

/// One parsed response.
#[derive(Debug)]
pub struct Reply {
    pub status: u16,
    pub head: String,
    pub body: Vec<u8>,
}

impl Reply {
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).to_string()
    }

    pub fn header(&self, name: &str) -> Option<String> {
        self.head.lines().find_map(|l| {
            let (n, v) = l.split_once(':')?;
            (n.eq_ignore_ascii_case(name)).then(|| v.trim().to_string())
        })
    }
}

pub fn connect(server: &Server) -> TcpStream {
    let s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

/// Read exactly one response (status line, headers, `Content-Length`
/// body) without consuming bytes of any pipelined successor: the head
/// is read byte-wise up to the blank line, the body with `read_exact`,
/// so a second response sitting in the same TCP segment stays buffered
/// for the next call.
pub fn read_reply(stream: &mut TcpStream) -> io::Result<Reply> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        if buf.ends_with(b"\r\n\r\n") {
            break;
        }
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "eof before response head: {:?}",
                    String::from_utf8_lossy(&buf)
                ),
            ));
        }
        buf.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&buf).to_string();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head:?}"));
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (n, v) = l.split_once(':')?;
            n.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .expect("response must carry content-length");
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| io::Error::new(io::ErrorKind::UnexpectedEof, format!("eof mid-body: {e}")))?;
    Ok(Reply { status, head, body })
}

/// Open a fresh connection, send raw bytes, read one reply.
pub fn roundtrip(server: &Server, raw: &[u8]) -> Reply {
    let mut s = connect(server);
    s.write_all(raw).expect("send");
    read_reply(&mut s).expect("read reply")
}

/// A plain closing GET on a fresh connection.
pub fn get(server: &Server, target: &str) -> Reply {
    roundtrip(
        server,
        format!("GET {target} HTTP/1.1\r\nconnection: close\r\n\r\n").as_bytes(),
    )
}
