//! Protocol-torture suite: conformance over a real loopback socket.
//! Every case asserts the exact response status, and the table-driven
//! cases re-probe `/healthz` afterwards to prove the worker survived
//! whatever the client just did to it.

mod common;

use std::io::{Read, Write};
use std::net::Shutdown;
use std::time::Duration;

use common::{connect, get, read_reply, roundtrip, start_server, test_cfg};

#[test]
fn torture_table_statuses_and_worker_survival() {
    let server = start_server(test_cfg());
    let cases: &[(&str, &[u8], u16)] = &[
        ("plain get", b"GET /healthz HTTP/1.1\r\n\r\n", 200),
        ("http/1.0", b"GET /healthz HTTP/1.0\r\n\r\n", 200),
        ("unknown route", b"GET /nope HTTP/1.1\r\n\r\n", 404),
        (
            "post to route",
            b"POST /search HTTP/1.1\r\ncontent-length: 0\r\n\r\n",
            405,
        ),
        ("garbage request line", b"GET /\r\n\r\n", 400),
        ("options probe", b"OPTIONS /search HTTP/1.1\r\n\r\n", 204),
        (
            "options unknown route",
            b"OPTIONS /nope HTTP/1.1\r\n\r\n",
            404,
        ),
        ("lowercase method", b"get /healthz HTTP/1.1\r\n\r\n", 501),
        (
            "lowercase options",
            b"options /healthz HTTP/1.1\r\n\r\n",
            501,
        ),
        ("unknown method", b"FROB /healthz HTTP/1.1\r\n\r\n", 501),
        ("bad version", b"GET /healthz HTTP/2.0\r\n\r\n", 505),
        ("bad target", b"GET healthz HTTP/1.1\r\n\r\n", 400),
        (
            "duplicate content-length",
            b"GET /healthz HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nxx",
            400,
        ),
        (
            "unparsable content-length",
            b"GET /healthz HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
            400,
        ),
        (
            "transfer-encoding",
            b"GET /healthz HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            501,
        ),
        (
            "oversized declared body",
            b"POST /search HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n",
            413,
        ),
        ("missing query param", b"GET /search HTTP/1.1\r\n\r\n", 400),
        (
            "bad percent escape",
            b"GET /search?q=%zz HTTP/1.1\r\n\r\n",
            400,
        ),
    ];
    for (name, raw, want) in cases {
        let reply = roundtrip(&server, raw);
        assert_eq!(reply.status, *want, "case {name}: {}", reply.body_text());
        // The worker that just handled that must still serve cleanly.
        let probe = get(&server, "/healthz");
        assert_eq!(probe.status, 200, "probe after case {name}");
    }
    let report = server.shutdown();
    assert!(report.drained);
    assert_eq!(
        report.accepted,
        report.completed + report.rejected + report.shed
    );
}

#[test]
fn oversized_headers_get_431() {
    let server = start_server(test_cfg());
    let raw = format!(
        "GET /healthz HTTP/1.1\r\nx-padding: {}\r\n\r\n",
        "a".repeat(16 * 1024)
    );
    let reply = roundtrip(&server, raw.as_bytes());
    assert_eq!(reply.status, 431);
    assert_eq!(get(&server, "/healthz").status, 200);
    server.shutdown();
}

#[test]
fn byte_at_a_time_trickle_parses() {
    let server = start_server(test_cfg());
    let mut s = connect(&server);
    let raw = b"GET /search?q=barbecue HTTP/1.1\r\nconnection: close\r\n\r\n";
    for &b in raw.iter() {
        s.write_all(&[b]).unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let reply = read_reply(&mut s).unwrap();
    assert_eq!(reply.status, 200);
    assert!(reply.body_text().contains("outdoor barbecue"));
    server.shutdown();
}

#[test]
fn pipelined_keep_alive_requests_answer_in_order() {
    let server = start_server(test_cfg());
    let mut s = connect(&server);
    s.write_all(
        b"GET /search?q=barbecue HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    )
    .unwrap();
    let first = read_reply(&mut s).unwrap();
    let second = read_reply(&mut s).unwrap();
    assert_eq!(first.status, 200);
    assert!(first.body_text().contains("cards"));
    assert_eq!(second.status, 200);
    assert_eq!(second.body_text(), "{\"status\":\"ok\"}");
    assert_eq!(second.header("connection").as_deref(), Some("close"));
    // The connection really does close afterwards.
    let mut tail = Vec::new();
    assert_eq!(s.read_to_end(&mut tail).unwrap(), 0);
    server.shutdown();
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let server = start_server(test_cfg());
    let mut s = connect(&server);
    for _ in 0..3 {
        s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let reply = read_reply(&mut s).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("connection").as_deref(), Some("keep-alive"));
    }
    server.shutdown();
}

#[test]
fn head_request_gets_headers_only() {
    let server = start_server(test_cfg());
    let mut s = connect(&server);
    s.write_all(b"HEAD /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
        .unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
    assert!(text.contains("content-length: 15")); // len of {"status":"ok"}
    assert!(text.ends_with("\r\n\r\n"), "no body after a HEAD: {text:?}");
    server.shutdown();
}

#[test]
fn head_matches_get_headers_on_every_route() {
    let server = start_server(test_cfg());
    for target in [
        "/healthz",
        "/search?q=barbecue",
        "/qa?q=barbecue",
        "/recommend",
        "/relevance?q=grill",
    ] {
        let full = get(&server, target);
        let mut s = connect(&server);
        s.write_all(format!("HEAD {target} HTTP/1.1\r\nconnection: close\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(
            text.ends_with("\r\n\r\n"),
            "{target}: HEAD must carry no body: {text:?}"
        );
        // Content-Length advertises the GET body it is not sending.
        assert!(
            text.contains(&format!("content-length: {}", full.body_text().len())),
            "{target}: HEAD content-length must match GET: {text:?}"
        );
    }
    server.shutdown();
}

#[test]
fn options_answers_allow_and_keeps_the_connection() {
    let server = start_server(test_cfg());
    let mut s = connect(&server);
    // An OPTIONS probe is a normal keep-alive request: the same
    // connection serves real traffic afterwards.
    s.write_all(b"OPTIONS /search HTTP/1.1\r\n\r\n").unwrap();
    let probe = read_reply(&mut s).unwrap();
    assert_eq!(probe.status, 204);
    assert_eq!(
        probe.header("allow").as_deref(),
        Some("GET, HEAD, OPTIONS"),
        "OPTIONS must advertise the served methods"
    );
    assert_eq!(probe.header("content-length").as_deref(), Some("0"));
    s.write_all(b"GET /search?q=barbecue HTTP/1.1\r\nconnection: close\r\n\r\n")
        .unwrap();
    let real = read_reply(&mut s).unwrap();
    assert_eq!(real.status, 200);
    assert!(real.body_text().contains("outdoor barbecue"));
    // POSTs advertise the allowed set on their 405.
    let reply = roundtrip(
        &server,
        b"POST /search HTTP/1.1\r\ncontent-length: 0\r\n\r\n",
    );
    assert_eq!(reply.status, 405);
    assert_eq!(reply.header("allow").as_deref(), Some("GET, HEAD, OPTIONS"));
    server.shutdown();
}

#[test]
fn early_disconnect_mid_request_leaves_server_healthy() {
    let server = start_server(test_cfg());
    {
        let mut s = connect(&server);
        s.write_all(b"GET /search?q=barbe").unwrap();
        // Drop: client vanishes mid-request.
    }
    assert_eq!(get(&server, "/healthz").status, 200);
    let report = server.shutdown();
    assert!(report.drained);
    assert_eq!(
        report.accepted,
        report.completed + report.rejected + report.shed
    );
}

#[test]
fn early_disconnect_mid_response_leaves_server_healthy() {
    let server = start_server(test_cfg());
    {
        let mut s = connect(&server);
        s.write_all(b"GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap();
        // Vanish without reading the (large) response.
        drop(s);
    }
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(get(&server, "/healthz").status, 200);
    server.shutdown();
}

#[test]
fn half_close_still_receives_the_response() {
    let server = start_server(test_cfg());
    let mut s = connect(&server);
    s.write_all(b"GET /search?q=barbecue HTTP/1.1\r\n\r\n")
        .unwrap();
    s.shutdown(Shutdown::Write).unwrap();
    let reply = read_reply(&mut s).unwrap();
    assert_eq!(reply.status, 200);
    assert!(reply.body_text().contains("outdoor barbecue"));
    // After the half-closed request the server sees EOF and closes.
    let mut tail = Vec::new();
    s.read_to_end(&mut tail).unwrap();
    server.shutdown();
}

#[test]
fn responses_carry_json_content_type() {
    let server = start_server(test_cfg());
    let reply = get(&server, "/search?q=barbecue&k=1");
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.header("content-type").as_deref(),
        Some("application/json")
    );
    server.shutdown();
}
