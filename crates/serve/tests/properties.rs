//! Property suite for the serving layer.
//!
//! 1. Parsing any byte stream never panics, and the sequence of parses
//!    and typed errors is identical no matter how the stream is chunked
//!    across `read()` boundaries.
//! 2. JSON responses are byte-identical across repeat renders.
//! 3. A served `/search` response equals the in-process
//!    `SemanticSearch::search` answer, for random worlds and queries.

mod common;

use std::sync::Arc;

use alicoco::AliCoCo;
use alicoco_obs::Registry;
use alicoco_serve::http::{Limits, Request, RequestParser};
use alicoco_serve::{json, router, EngineConfig, ServingPack};
use proptest::prelude::*;

const VOCAB: &[&str] = &[
    "outdoor", "barbecue", "summer", "beach", "grill", "party", "yoga", "indoor", "camping",
    "picnic", "winter", "gift",
];

fn word(i: u8) -> &'static str {
    VOCAB[i as usize % VOCAB.len()]
}

/// Run the parser over chunks, collecting every parse and the first
/// terminal error (after which a real connection would close).
fn outcomes(chunks: &[&[u8]], limits: Limits) -> Vec<Result<Request, u16>> {
    let mut parser = RequestParser::new(limits);
    let mut out = Vec::new();
    for chunk in chunks {
        parser.push(chunk);
        loop {
            match parser.poll() {
                Ok(Some(req)) => out.push(Ok(req)),
                Ok(None) => break,
                Err(e) => {
                    out.push(Err(e.status()));
                    return out;
                }
            }
        }
    }
    out
}

/// Split `bytes` at the given (wrapped) points into consecutive chunks.
fn chunked<'a>(bytes: &'a [u8], splits: &[usize]) -> Vec<&'a [u8]> {
    let mut cuts: Vec<usize> = splits
        .iter()
        .map(|s| if bytes.is_empty() { 0 } else { s % bytes.len() })
        .collect();
    cuts.push(0);
    cuts.push(bytes.len());
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2).map(|w| &bytes[w[0]..w[1]]).collect()
}

/// Assemble a request-ish byte stream from structured parts so the
/// generator hits deep parser states, then optionally corrupt one byte.
#[derive(Clone, Debug)]
struct RequestSpec {
    method: u8,
    target: u8,
    version: u8,
    headers: Vec<(u8, u8)>,
    body_len: u8,
    corrupt: Option<(u16, u8)>,
}

fn assemble(spec: &RequestSpec) -> Vec<u8> {
    let method = ["GET", "HEAD", "POST", "PUT", "get", ""][spec.method as usize % 6];
    let target = ["/healthz", "/search?q=grill", "/", "nopath", "/%zz"][spec.target as usize % 5];
    let version = ["HTTP/1.1", "HTTP/1.0", "HTTP/2.0", "HTP", ""][spec.version as usize % 5];
    let mut out = format!("{method} {target} {version}\r\n");
    for &(name, value) in &spec.headers {
        let name = [
            "host",
            "connection",
            "content-length",
            "x-pad",
            "transfer-encoding",
        ][name as usize % 5];
        let value = ["x", "close", "keep-alive", "3", "chunked", ""][value as usize % 6];
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    out.push_str(&format!("content-length: {}\r\n\r\n", spec.body_len % 8));
    let mut bytes = out.into_bytes();
    bytes.extend(std::iter::repeat_n(b'b', (spec.body_len % 8) as usize));
    if let Some((pos, byte)) = spec.corrupt {
        let len = bytes.len();
        if len > 0 {
            bytes[pos as usize % len] = byte;
        }
    }
    bytes
}

fn spec_strategy() -> impl Strategy<Value = RequestSpec> {
    (
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        prop::collection::vec((any::<u8>(), any::<u8>()), 0..4),
        any::<u8>(),
        (any::<u16>(), any::<u8>(), any::<bool>()),
    )
        .prop_map(
            |(method, target, version, headers, body_len, (pos, byte, do_corrupt))| RequestSpec {
                method,
                target,
                version,
                headers,
                body_len,
                corrupt: do_corrupt.then_some((pos, byte)),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random garbage: never panics, chunking never changes the outcome.
    #[test]
    fn parser_is_chunking_invariant_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..160),
        splits in prop::collection::vec(0usize..160, 0..6),
    ) {
        let limits = Limits { max_head_bytes: 96, max_headers: 4, max_target_bytes: 48, max_body_bytes: 16 };
        let whole = outcomes(&[&bytes], limits);
        let parts = chunked(&bytes, &splits);
        let split_up = outcomes(&parts, limits);
        prop_assert_eq!(whole, split_up);
    }

    /// Structured request streams (valid and near-valid): one parse or
    /// one typed error, identical across chunkings.
    #[test]
    fn parser_is_chunking_invariant_on_requests(
        specs in prop::collection::vec(spec_strategy(), 1..3),
        splits in prop::collection::vec(0usize..400, 0..6),
    ) {
        let bytes: Vec<u8> = specs.iter().flat_map(assemble).collect();
        let whole = outcomes(&[&bytes], Limits::default());
        let parts = chunked(&bytes, &splits);
        let split_up = outcomes(&parts, Limits::default());
        prop_assert_eq!(whole.clone(), split_up);
        // Every terminal is a typed status the server can answer with.
        if let Some(Err(status)) = whole.last() {
            prop_assert!(matches!(status, 400 | 413 | 431 | 501 | 505));
        }
    }
}

#[derive(Clone, Debug)]
struct WorldSpec {
    primitives: Vec<(u8, u8)>,
    concepts: Vec<(u8, u8)>,
    items: Vec<(u8, u8)>,
    concept_prims: Vec<(u8, u8)>,
    concept_items: Vec<(u8, u8, u8)>,
}

fn world_strategy() -> impl Strategy<Value = WorldSpec> {
    (
        prop::collection::vec((0u8..12, 0u8..3), 1..8),
        prop::collection::vec((0u8..12, 0u8..12), 1..10),
        prop::collection::vec((0u8..12, 0u8..12), 1..8),
        prop::collection::vec((0u8..14, 0u8..8), 0..12),
        prop::collection::vec((0u8..14, 0u8..8, 0u8..=100), 0..12),
    )
        .prop_map(
            |(primitives, concepts, items, concept_prims, concept_items)| WorldSpec {
                primitives,
                concepts,
                items,
                concept_prims,
                concept_items,
            },
        )
}

fn build_world(spec: &WorldSpec) -> AliCoCo {
    let mut kg = AliCoCo::new();
    let root = kg.add_class("concept", None);
    let classes: Vec<_> = (0..3)
        .map(|i| kg.add_class(&format!("domain{i}"), Some(root)))
        .collect();
    let prims: Vec<_> = spec
        .primitives
        .iter()
        .map(|&(w, c)| kg.add_primitive(word(w), classes[c as usize % classes.len()]))
        .collect();
    let concepts: Vec<_> = spec
        .concepts
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| kg.add_concept(&format!("{} {} {i}", word(a), word(b))))
        .collect();
    let items: Vec<_> = spec
        .items
        .iter()
        .map(|&(a, b)| kg.add_item(&[word(a).to_string(), word(b).to_string()]))
        .collect();
    for &(c, p) in &spec.concept_prims {
        kg.link_concept_primitive(
            concepts[c as usize % concepts.len()],
            prims[p as usize % prims.len()],
        );
    }
    for &(c, i, w) in &spec.concept_items {
        kg.link_concept_item(
            concepts[c as usize % concepts.len()],
            items[i as usize % items.len()],
            f32::from(w) / 100.0,
        );
    }
    kg
}

fn query_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..14, 1..4)
        .prop_map(|ws| ws.iter().map(|&w| word(w)).collect::<Vec<_>>().join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same engine answer always renders to the same bytes.
    #[test]
    fn renders_are_byte_identical_across_repeats(
        spec in world_strategy(),
        query in query_strategy(),
    ) {
        let kg = build_world(&spec);
        let pack = ServingPack::build(Arc::new(kg), &EngineConfig::default(), &Registry::new());
        let cards = pack.search().search(&query);
        prop_assert_eq!(json::render_search(&cards), json::render_search(&cards));
        let again = pack.search().search(&query);
        prop_assert_eq!(json::render_search(&cards), json::render_search(&again));
        let recs = pack.recommender().recommend(&[]);
        prop_assert_eq!(
            json::render_recommend(pack.graph(), &recs),
            json::render_recommend(pack.graph(), &recs)
        );
        // The routed response is the rendered engine answer, stably.
        let req = alicoco_serve::http::Request {
            method: alicoco_serve::http::Method::Get,
            target: format!("/search?q={}", query.replace(' ', "+")),
            keep_alive: true,
            body: Vec::new(),
        };
        let reg = Registry::new();
        let (_, first) = router::handle(&req, &pack, &reg);
        let (_, second) = router::handle(&req, &pack, &reg);
        prop_assert_eq!(first.body, second.body);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End to end over a real socket: the served `/search` body equals
    /// the in-process engine answer rendered by the same JSON layer.
    #[test]
    fn served_search_equals_in_process_search(
        spec in world_strategy(),
        query in query_strategy(),
        k in 1usize..6,
    ) {
        let kg = Arc::new(build_world(&spec));
        let server = common::start_server_on(Arc::clone(&kg), common::test_cfg());
        let pack = ServingPack::build(kg, &EngineConfig::default(), &Registry::new());
        let reply = common::get(
            &server,
            &format!("/search?q={}&k={k}", query.replace(' ', "+")),
        );
        prop_assert_eq!(reply.status, 200);
        let expected = json::render_search(&pack.search().search_top(&query, k));
        prop_assert_eq!(reply.body_text(), expected);
        let report = server.shutdown();
        prop_assert!(report.drained);
    }
}
