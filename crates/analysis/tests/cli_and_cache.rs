//! End-to-end tests for the `alicoco-lint` binary contract and the
//! incremental cache: exit codes (0 clean / 1 findings / 2 internal
//! error), `--deny-stale`, and the cache property that editing one file
//! re-analyzes only that file while findings stay byte-identical.
//!
//! Each test builds a throwaway miniature workspace under the target
//! temp dir and runs the real binary via `CARGO_BIN_EXE_alicoco-lint`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};

use analysis::{lint_workspace_with, LintOptions};

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

/// A fresh workspace root that is removed on drop.
struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(name: &str) -> Self {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "alicoco-lint-test-{}-{name}-{id}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create temp workspace");
        TempWorkspace { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("rel path has a parent"))
            .expect("create parent dirs");
        fs::write(path, contents).expect("write fixture file");
    }

    fn lint(&self, extra: &[&str]) -> Output {
        Command::new(env!("CARGO_BIN_EXE_alicoco-lint"))
            .arg("--root")
            .arg(&self.root)
            .args(extra)
            .output()
            .expect("run alicoco-lint")
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("lint must exit, not be killed")
}

const CLEAN_SRC: &str = "pub fn ok(v: &[u32]) -> u32 { v.first().copied().unwrap_or(0) }\n";
const DIRTY_SRC: &str = "pub fn bad(v: &[u32]) -> u32 { *v.first().unwrap() }\n";

// ------------------------------------------------------------ exit codes

#[test]
fn exit_zero_on_a_clean_workspace() {
    let ws = TempWorkspace::new("clean");
    ws.write("crates/core/src/lib.rs", CLEAN_SRC);
    let out = ws.lint(&[]);
    assert_eq!(exit_code(&out), 0, "stderr: {:?}", out.stderr);
}

#[test]
fn exit_one_when_findings_are_active() {
    let ws = TempWorkspace::new("findings");
    ws.write("crates/core/src/lib.rs", DIRTY_SRC);
    let out = ws.lint(&[]);
    assert_eq!(exit_code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("AL001"), "stdout: {stdout}");
    assert!(stdout.contains("suppress with:"), "stdout: {stdout}");
}

#[test]
fn exit_two_on_unreadable_allowlist_not_one() {
    let ws = TempWorkspace::new("badallow");
    ws.write("crates/core/src/lib.rs", CLEAN_SRC);
    ws.write("lint-allow.txt", "AL001 not-a-fingerprint\n");
    let out = ws.lint(&[]);
    assert_eq!(
        exit_code(&out),
        2,
        "malformed allowlist is an internal error, stderr: {:?}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn exit_two_when_a_cache_entry_is_corrupt() {
    let ws = TempWorkspace::new("corrupt");
    ws.write("crates/core/src/lib.rs", CLEAN_SRC);
    let cache_dir = ws.root.join("cache");
    let cache_arg = cache_dir.to_str().expect("utf8 temp path").to_string();
    let out = ws.lint(&["--cache-dir", &cache_arg]);
    assert_eq!(exit_code(&out), 0);

    // Keep the valid version header but mangle the body: that is cache
    // corruption (exit 2), not a findings problem (exit 1) and not a
    // silent cache miss (exit 0 with wrong stats).
    let entry = fs::read_dir(&cache_dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .find(|e| e.path().extension().is_some_and(|x| x == "lint"))
        .expect("one cache entry written")
        .path();
    let text = fs::read_to_string(&entry).expect("read cache entry");
    let header = text.lines().next().expect("entry has a header");
    fs::write(&entry, format!("{header}\nZ\tgarbage-record\n")).expect("corrupt entry");

    let out = ws.lint(&["--cache-dir", &cache_arg]);
    assert_eq!(
        exit_code(&out),
        2,
        "stderr: {:?}",
        String::from_utf8_lossy(&out.stderr)
    );
}

// ------------------------------------------------------------ allowlist

#[test]
fn stale_entries_warn_by_default_and_fail_under_deny_stale() {
    let ws = TempWorkspace::new("stale");
    ws.write("crates/core/src/lib.rs", CLEAN_SRC);
    ws.write(
        "lint-allow.txt",
        "AL001 00000000deadbeef suppresses a line that no longer exists\n",
    );

    let out = ws.lint(&[]);
    assert_eq!(exit_code(&out), 0, "stale alone must stay a warning");
    assert!(String::from_utf8_lossy(&out.stderr).contains("stale allowlist entry"));

    let out = ws.lint(&["--deny-stale"]);
    assert_eq!(exit_code(&out), 1, "--deny-stale promotes stale to failure");
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

// ------------------------------------------------------------ the cache

fn run_with_cache(root: &Path, cache: &Path) -> analysis::LintRun {
    let opts = LintOptions {
        cache_dir: Some(cache.to_path_buf()),
    };
    lint_workspace_with(root, &opts).expect("lint run")
}

/// Render findings to a canonical string so "byte-identical" is literal.
fn render(run: &analysis::LintRun) -> String {
    run.findings
        .iter()
        .map(|f| {
            format!(
                "{}:{}:{}:{}:{}:{}:{}\n",
                f.path, f.line, f.col, f.rule, f.fingerprint, f.snippet, f.message
            )
        })
        .collect()
}

#[test]
fn editing_one_file_reanalyzes_only_it_and_findings_stay_identical() {
    let ws = TempWorkspace::new("incremental");
    ws.write("crates/core/src/lib.rs", DIRTY_SRC);
    ws.write("crates/core/src/other.rs", CLEAN_SRC);
    ws.write(
        "crates/text/src/lib.rs",
        "pub fn third(v: &[u32]) -> usize { v.len() }\n",
    );
    let cache = ws.root.join("cache");

    let cold = run_with_cache(&ws.root, &cache);
    assert_eq!(cold.files_seen, 3);
    assert_eq!(cold.cache_hits, 0);

    let warm = run_with_cache(&ws.root, &cache);
    assert_eq!(warm.files_seen, 3);
    assert_eq!(warm.cache_hits, 3, "warm run must be all cache hits");
    assert_eq!(
        render(&cold),
        render(&warm),
        "cached findings must be byte-identical to cold analysis"
    );

    // Edit exactly one file (introducing a second finding): only that
    // file misses the cache, and its findings change while the others'
    // are reproduced exactly.
    ws.write(
        "crates/core/src/other.rs",
        "pub fn worse(v: &[u32]) -> u32 { v[0] }\n",
    );
    let edited = run_with_cache(&ws.root, &cache);
    assert_eq!(edited.files_seen, 3);
    assert_eq!(edited.cache_hits, 2, "only the edited file re-analyzes");
    assert!(edited
        .findings
        .iter()
        .any(|f| f.path == "crates/core/src/other.rs" && f.rule == "AL001"));
    let unchanged = |run: &analysis::LintRun| {
        run.findings
            .iter()
            .filter(|f| f.path != "crates/core/src/other.rs")
            .map(|f| format!("{}:{}:{}:{}", f.path, f.line, f.rule, f.fingerprint))
            .collect::<Vec<_>>()
    };
    assert_eq!(unchanged(&cold), unchanged(&edited));

    // Reverting restores full warm behavior against the original entry.
    ws.write("crates/core/src/other.rs", CLEAN_SRC);
    let reverted = run_with_cache(&ws.root, &cache);
    assert_eq!(reverted.cache_hits, 3, "old content key is still cached");
    assert_eq!(render(&cold), render(&reverted));
}

#[test]
fn workspace_rules_fire_identically_from_cached_summaries() {
    // AL007 needs the cross-crate call graph, which on a warm run is
    // built purely from deserialized summaries — the finding (chain and
    // fingerprint included) must not depend on which path produced it.
    let ws = TempWorkspace::new("wscache");
    ws.write(
        "crates/apps/src/serve.rs",
        "pub fn handle(q: &str) -> u32 { risky_lookup(q) }\n",
    );
    ws.write(
        "crates/text/src/util.rs",
        "pub fn risky_lookup(q: &str) -> u32 { q.parse().unwrap() }\n",
    );
    let cache = ws.root.join("cache");

    let cold = run_with_cache(&ws.root, &cache);
    assert!(cold.findings.iter().any(|f| f.rule == "AL007"));

    let warm = run_with_cache(&ws.root, &cache);
    assert_eq!(warm.cache_hits, 2);
    assert_eq!(render(&cold), render(&warm));
}
