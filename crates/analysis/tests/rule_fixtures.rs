//! Fixture tests proving each lint rule live: for every rule, a bad snippet
//! that must trigger it and a good snippet that must not. Fixtures are
//! in-memory sources run through [`analysis::lint_source`] under paths
//! chosen to exercise each rule's scoping.

use analysis::lint_source;

/// Rules triggered by `src` linted as `path`.
fn rules_for(path: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint_source(path, src).into_iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

// ---------------------------------------------------------------- AL001

#[test]
fn al001_flags_unwrap_expect_and_panicking_macros_in_serving_code() {
    let src = r#"
        fn serve(v: Vec<u32>) -> u32 {
            let a = v.first().unwrap();
            let b = v.last().expect("non-empty");
            if *a > *b { panic!("inverted"); }
            match *a { 0 => unreachable!(), n => n }
        }
    "#;
    let found = lint_source("crates/core/src/query.rs", src);
    assert_eq!(found.iter().filter(|f| f.rule == "AL001").count(), 4);
}

#[test]
fn al001_flags_bare_indexing_but_not_typed_ids() {
    let bad = "fn f(v: &[u32], i: usize) -> u32 { v[i] }";
    assert_eq!(rules_for("crates/apps/src/search.rs", bad), vec!["AL001"]);

    let good = "fn f(v: &[u32], id: NodeId) -> u32 { v[id.index()] }";
    assert!(rules_for("crates/apps/src/search.rs", good).is_empty());

    let full_range = "fn f(v: &[u32]) -> &[u32] { &v[..] }";
    assert!(rules_for("crates/apps/src/search.rs", full_range).is_empty());
}

#[test]
fn al001_ignores_tests_and_out_of_scope_crates() {
    let in_tests = r#"
        fn serve() -> u32 { 1 }
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() { assert_eq!(super::serve(), v.first().unwrap() + v[0]); }
        }
    "#;
    assert!(rules_for("crates/core/src/query.rs", in_tests).is_empty());

    let mining = "fn pick(v: &[u32]) -> u32 { v.first().unwrap() + v[0] }";
    assert!(rules_for("crates/mining/src/pipeline.rs", mining).is_empty());
}

#[test]
fn al001_ignores_strings_and_comments() {
    let src = r#"
        // A comment may say v.unwrap() or v[i] freely.
        fn f() -> &'static str { "docs: call .unwrap() on v[i]" }
    "#;
    assert!(rules_for("crates/core/src/query.rs", src).is_empty());
}

// ---------------------------------------------------------------- AL002

#[test]
fn al002_flags_partial_cmp_sorts_everywhere() {
    let src = "fn rank(xs: &mut Vec<f32>) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
    assert_eq!(rules_for("crates/text/src/word2vec.rs", src), vec!["AL002"]);
    // Serving crates get the panic finding too, but AL002 still fires.
    assert!(rules_for("crates/core/src/query.rs", src).contains(&"AL002"));
}

#[test]
fn al002_allows_rank_module_and_total_order_call_sites() {
    let definition = r#"
        impl Ord for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> { None }
        }
        fn by_score(a: &f32, b: &f32) -> Ordering { b.total_cmp(a) }
    "#;
    assert!(rules_for("crates/nn/src/rank.rs", definition).is_empty());

    let call_site = "fn rank(xs: &mut Vec<Entry>) { xs.sort_by(rank::by_score_then_id); }";
    assert!(rules_for("crates/text/src/word2vec.rs", call_site).is_empty());
}

// ---------------------------------------------------------------- AL003

#[test]
fn al003_flags_private_epoch_loops() {
    let src = r#"
        fn train(cfg: &Config) {
            for epoch in 0..cfg.epochs {
                step(epoch);
            }
        }
    "#;
    assert_eq!(rules_for("crates/text/src/doc2vec.rs", src), vec!["AL003"]);
}

#[test]
fn al003_allows_the_engine_tests_and_plain_loops() {
    let src = "fn train(cfg: &Config) { for epoch in 0..cfg.epochs { step(epoch); } }";
    assert!(rules_for("crates/nn/src/train.rs", src).is_empty());

    let test_oracle = r#"
        #[cfg(test)]
        mod tests {
            fn reference(cfg: &Config) { for epoch in 0..cfg.epochs { step(epoch); } }
        }
    "#;
    assert!(rules_for("crates/text/src/doc2vec.rs", test_oracle).is_empty());

    let plain = "fn sum(v: &[u32]) -> u32 { let mut s = 0; for x in v { s += x; } s }";
    assert!(rules_for("crates/text/src/doc2vec.rs", plain).is_empty());
}

// ---------------------------------------------------------------- AL004

#[test]
fn al004_flags_two_locks_in_one_statement() {
    let src = "fn f(m: &RwLock<u32>) -> u32 { *m.read() + *m.write() }";
    assert_eq!(rules_for("crates/nn/src/param.rs", src), vec!["AL004"]);
}

#[test]
fn al004_flags_read_then_write_upgrade() {
    let src = r#"
        fn f(p: &RwLock<u32>) {
            let g = p.read();
            let w = p.write();
        }
    "#;
    assert_eq!(rules_for("crates/nn/src/param.rs", src), vec!["AL004"]);
}

#[test]
fn al004_flags_spawn_with_guard_held() {
    let src = r#"
        fn f(p: &RwLock<u32>) {
            let g = self.params.read();
            std::thread::scope(|s| {
                s.spawn(|| work(&g));
            });
        }
    "#;
    assert!(rules_for("crates/nn/src/train.rs", src).contains(&"AL004"));
}

#[test]
fn al004_allows_dropped_scoped_and_temporary_guards() {
    let dropped = r#"
        fn f(p: &RwLock<u32>) {
            let g = p.read();
            drop(g);
            let w = p.write();
        }
    "#;
    assert!(rules_for("crates/nn/src/param.rs", dropped).is_empty());

    let scoped = r#"
        fn f(p: &RwLock<u32>) {
            { let g = p.read(); use_it(&g); }
            let w = p.write();
        }
    "#;
    assert!(rules_for("crates/nn/src/param.rs", scoped).is_empty());

    let temporary = r#"
        fn f(p: &RwLock<Vec<u32>>) {
            let n = p.read().len();
            let w = p.write();
        }
    "#;
    assert!(rules_for("crates/nn/src/param.rs", temporary).is_empty());

    let distinct = r#"
        fn f(a: &RwLock<u32>, b: &RwLock<u32>) {
            let ga = a.read();
            let gb = b.read();
        }
    "#;
    assert!(rules_for("crates/nn/src/param.rs", distinct).is_empty());
}

#[test]
fn al004_flags_per_op_guard_reads_in_the_training_hot_path() {
    // A raw `Param::value()` inside the engine's per-example code is a lock
    // acquisition in the innermost loop — the pattern the snapshot cache
    // exists to replace.
    let src = r#"
        fn forward(p: &Param) -> Tensor {
            let w = p.value();
            w.clone()
        }
    "#;
    assert_eq!(rules_for("crates/nn/src/graph.rs", src), vec!["AL004"]);
    let write = "fn step(p: &Param) { p.value_mut().fill_zero(); }";
    assert_eq!(rules_for("crates/nn/src/train.rs", write), vec!["AL004"]);
}

#[test]
fn al004_hot_path_guard_read_exemptions() {
    // `Graph::value(id)` takes an argument — a tape lookup, not a lock.
    let lookup = "fn read(g: &Graph, id: NodeId) -> f32 { g.value(id).item() }";
    assert!(rules_for("crates/nn/src/graph.rs", lookup).is_empty());

    // Tests in the hot-path files may touch params directly.
    let test_code = r#"
        #[cfg(test)]
        mod tests {
            #[test]
            fn fits() { assert!(w.value().item() < 1.0); }
        }
    "#;
    assert!(rules_for("crates/nn/src/train.rs", test_code).is_empty());

    // Outside the hot-path files (optimizers, persistence, layers) the
    // guard API is the intended interface.
    let optimizer = "fn step(p: &Param) { let mut v = p.value_mut(); v.axpy(-0.1, &g); }";
    assert!(rules_for("crates/nn/src/param.rs", optimizer).is_empty());
}

// ---------------------------------------------------------------- AL005

#[test]
fn al005_flags_unsorted_hash_iteration_in_serialization() {
    let src = r#"
        fn save(out: &mut String) {
            let mut map: FxHashMap<String, u32> = FxHashMap::default();
            for k in map.keys() {
                out.push_str(k);
            }
        }
    "#;
    assert_eq!(
        rules_for("crates/core/src/snapshot/binary.rs", src),
        vec!["AL005"]
    );
}

#[test]
fn al005_allows_sorted_collection_and_out_of_scope_files() {
    let sorted = r#"
        fn save(out: &mut String, map: &FxHashMap<String, u32>) {
            let mut ks: Vec<&String> = map.keys().collect();
            ks.sort();
            for k in ks {
                out.push_str(k);
            }
        }
    "#;
    assert!(rules_for("crates/core/src/snapshot/binary.rs", sorted).is_empty());

    let elsewhere = r#"
        fn count(map: &FxHashMap<String, u32>) -> u32 {
            let mut n = 0;
            for v in map.values() { n += v; }
            n
        }
    "#;
    assert!(rules_for("crates/core/src/query.rs", elsewhere).is_empty());
}

// ---------------------------------------------------------------- AL006

#[test]
fn al006_requires_safety_comments_on_unsafe_blocks() {
    let bad = "fn f(p: *const u32) -> u32 { unsafe { p.read_volatile() } }";
    assert_eq!(rules_for("crates/nn/src/tensor.rs", bad), vec!["AL006"]);

    let good = r#"
        fn f(p: *const u32) -> u32 {
            // SAFETY: p is non-null and valid for reads; caller upholds this.
            unsafe { p.read_volatile() }
        }
    "#;
    assert!(rules_for("crates/nn/src/tensor.rs", good).is_empty());

    let declaration = "unsafe fn raw(p: *const u32) -> u32 { 0 }";
    assert!(rules_for("crates/nn/src/tensor.rs", declaration).is_empty());
}

// ---------------------------------------------------------- diagnostics

#[test]
fn findings_carry_position_snippet_and_fingerprint() {
    let src = "fn serve(v: &[u32]) -> u32 {\n    v.first().unwrap()\n}\n";
    let found = lint_source("crates/core/src/query.rs", src);
    assert_eq!(found.len(), 1);
    let f = &found[0];
    assert_eq!(f.rule, "AL001");
    assert_eq!(f.line, 2);
    assert_eq!(f.snippet, "v.first().unwrap()");
    assert_eq!(f.fingerprint.len(), 16);
    assert!(f.fingerprint.chars().all(|c| c.is_ascii_hexdigit()));
}
