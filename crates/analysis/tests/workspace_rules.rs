//! Fixture tests for the workspace-level rules (AL007..AL009): for each
//! rule a bad multi-file fixture that must trigger it, a good variant that
//! must not, and the jurisdiction splits against the per-file rules.
//! Fixtures are in-memory `(path, source)` pairs run through
//! [`analysis::lint_sources`], which performs the same per-file + call
//! graph pipeline the binary uses.

use analysis::allowlist::Allowlist;
use analysis::lint_sources;

/// Rules triggered by the fixture set, deduped in finding order.
fn rules_for(files: &[(&str, &str)]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint_sources(files).into_iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

// ---------------------------------------------------------------- AL007

const APP_ENTRY: &str = r#"
    pub fn handle(q: &str) -> u32 { risky_lookup(q) }
"#;

#[test]
fn al007_flags_panics_reachable_across_crates_with_the_chain() {
    let helper = r#"
        pub fn risky_lookup(q: &str) -> u32 { q.parse().unwrap() }
    "#;
    let findings = lint_sources(&[
        ("crates/apps/src/serve.rs", APP_ENTRY),
        ("crates/text/src/util.rs", helper),
    ]);
    let al007: Vec<_> = findings.iter().filter(|f| f.rule == "AL007").collect();
    assert_eq!(al007.len(), 1, "findings: {findings:?}");
    // The finding anchors at the panic site, not the entry point...
    assert_eq!(al007[0].path, "crates/text/src/util.rs");
    // ...and the message walks the chain from the serving API down.
    assert!(
        al007[0].message.contains("handle -> risky_lookup"),
        "chain missing from: {}",
        al007[0].message
    );
}

#[test]
fn al007_stays_quiet_without_a_panic_or_a_public_entry() {
    let safe_helper = r#"
        pub fn risky_lookup(q: &str) -> u32 { q.parse().unwrap_or(0) }
    "#;
    assert!(rules_for(&[
        ("crates/apps/src/serve.rs", APP_ENTRY),
        ("crates/text/src/util.rs", safe_helper),
    ])
    .is_empty());

    // Same panic, but only reachable from a private fn: not a serving API.
    let private_entry = "fn internal(q: &str) -> u32 { risky_lookup(q) }";
    let helper = "pub fn risky_lookup(q: &str) -> u32 { q.parse().unwrap() }";
    assert!(rules_for(&[
        ("crates/apps/src/serve.rs", private_entry),
        ("crates/text/src/util.rs", helper),
    ])
    .is_empty());
}

#[test]
fn al007_leaves_serving_crate_panic_sites_to_al001() {
    // A panic inside the serving crate itself is AL001's jurisdiction;
    // AL007 must not double-report it.
    let local = "pub fn handle(v: &[u32]) -> u32 { *v.first().unwrap() }";
    assert_eq!(
        rules_for(&[("crates/apps/src/serve.rs", local)]),
        vec!["AL001"]
    );
}

// ---------------------------------------------------------------- AL008

#[test]
fn al008_flags_a_lock_order_cycle_with_both_hops() {
    let src = r#"
        struct Shared { a: RwLock<u32>, b: RwLock<u32> }
        impl Shared {
            fn ab(&self) -> u32 {
                let ga = self.a.read();
                let gb = self.b.read();
                *ga + *gb
            }
            fn ba(&self) -> u32 {
                let gb = self.b.write();
                let ga = self.a.write();
                *ga + *gb
            }
        }
    "#;
    let findings = lint_sources(&[("crates/core/src/shared.rs", src)]);
    let al008: Vec<_> = findings.iter().filter(|f| f.rule == "AL008").collect();
    assert_eq!(al008.len(), 1, "findings: {findings:?}");
    let msg = &al008[0].message;
    assert!(msg.contains("lock-order cycle"), "message: {msg}");
    // Both conflicting chains are named so the fix order is obvious.
    assert!(msg.contains(".a") && msg.contains(".b"), "message: {msg}");
}

#[test]
fn al008_allows_a_consistent_global_order() {
    let src = r#"
        struct Shared { a: RwLock<u32>, b: RwLock<u32> }
        impl Shared {
            fn sum(&self) -> u32 {
                let ga = self.a.read();
                let gb = self.b.read();
                *ga + *gb
            }
            fn bump(&self) {
                let mut ga = self.a.write();
                let mut gb = self.b.write();
                *ga += 1;
                *gb += 1;
            }
        }
    "#;
    assert!(rules_for(&[("crates/core/src/shared.rs", src)]).is_empty());
}

#[test]
fn al008_sees_cycles_through_helper_calls() {
    // `tick` holds `a` while calling a helper that takes `b`; `flush`
    // acquires them in the opposite order directly. The a→b edge only
    // exists interprocedurally.
    let src = r#"
        struct Shared { a: Mutex<u32>, b: Mutex<u32> }
        impl Shared {
            fn tick(&self) {
                let ga = self.a.lock();
                self.touch_b(*ga);
            }
            fn touch_b(&self, v: u32) {
                let mut gb = self.b.lock();
                *gb = v;
            }
            fn flush(&self) {
                let gb = self.b.lock();
                let ga = self.a.lock();
                drop((ga, gb));
            }
        }
    "#;
    let findings = lint_sources(&[("crates/core/src/shared.rs", src)]);
    assert!(
        findings.iter().any(|f| f.rule == "AL008"),
        "interprocedural cycle missed: {findings:?}"
    );
}

#[test]
fn al008_flags_reacquiring_a_held_lock_through_a_call() {
    // Direct double-acquisition in one fn is AL004's intra-file
    // jurisdiction; the interprocedural shape — calling a helper that
    // re-takes the lock you hold — is AL008's.
    let src = r#"
        struct Shared { a: Mutex<u32> }
        impl Shared {
            fn outer(&self) -> u32 {
                let g = self.a.lock();
                *g + self.inner()
            }
            fn inner(&self) -> u32 {
                let g = self.a.lock();
                *g
            }
        }
    "#;
    let findings = lint_sources(&[("crates/core/src/shared.rs", src)]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "AL008" && f.message.contains("self-deadlock")),
        "self-deadlock missed: {findings:?}"
    );
}

// ---------------------------------------------------------------- AL009

#[test]
fn al009_flags_hash_iteration_reachable_from_serving_output() {
    let helper = r#"
        pub fn risky_lookup(q: &str) -> u32 {
            let map: FxHashMap<String, u32> = FxHashMap::default();
            let mut n = 0;
            for (_k, v) in &map { n += v; }
            n
        }
    "#;
    let findings = lint_sources(&[
        ("crates/apps/src/serve.rs", APP_ENTRY),
        ("crates/text/src/util.rs", helper),
    ]);
    let al009: Vec<_> = findings.iter().filter(|f| f.rule == "AL009").collect();
    assert_eq!(al009.len(), 1, "findings: {findings:?}");
    assert_eq!(al009[0].path, "crates/text/src/util.rs");
    assert!(
        al009[0].message.contains("handle -> risky_lookup"),
        "chain missing from: {}",
        al009[0].message
    );
}

#[test]
fn al009_treats_sink_named_functions_as_roots() {
    // `save_*` functions are serialization sinks wherever they live, even
    // private ones in non-serving crates.
    let src = r#"
        fn save_postings(map: &FxHashMap<String, u32>, out: &mut String) {
            collect_into(map, out);
        }
        fn collect_into(map: &FxHashMap<String, u32>, out: &mut String) {
            for k in map.keys() { out.push_str(k); }
        }
    "#;
    let findings = lint_sources(&[("crates/nn/src/index.rs", src)]);
    assert!(
        findings.iter().any(|f| f.rule == "AL009"),
        "sink-rooted iteration missed: {findings:?}"
    );
}

#[test]
fn al009_sorted_iteration_does_not_escape() {
    let helper = r#"
        pub fn risky_lookup(q: &str) -> u32 {
            let map: FxHashMap<String, u32> = FxHashMap::default();
            let mut ks: Vec<&String> = map.keys().collect();
            ks.sort();
            ks.len() as u32
        }
    "#;
    assert!(rules_for(&[
        ("crates/apps/src/serve.rs", APP_ENTRY),
        ("crates/text/src/util.rs", helper),
    ])
    .is_empty());
}

#[test]
fn al009_flags_clock_reads_outside_obs_only() {
    let timed = "pub fn step() -> Instant { Instant::now() }";
    let findings = lint_sources(&[("crates/nn/src/train2.rs", timed)]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "AL009" && f.message.contains("clock")),
        "clock read missed: {findings:?}"
    );

    // The observability crate owns wall time; benches measure it.
    assert!(rules_for(&[("crates/obs/src/span2.rs", timed)]).is_empty());
    assert!(rules_for(&[("crates/bench/src/run.rs", timed)]).is_empty());
}

// ------------------------------------------- serve crate jurisdiction

#[test]
fn serve_crate_panic_sites_are_al001_jurisdiction() {
    // The HTTP layer is serving code: direct panics there are AL001's,
    // exactly like apps/ and core/.
    let local = "pub fn handle(v: &[u32]) -> u32 { *v.first().unwrap() }";
    assert_eq!(
        rules_for(&[("crates/serve/src/router.rs", local)]),
        vec!["AL001"]
    );
}

#[test]
fn al007_walks_chains_rooted_at_serve_entry_points() {
    // A panic in a helper crate reachable from a public serve fn must be
    // flagged with the chain from the HTTP entry point down.
    let entry = "pub fn dispatch(q: &str) -> u32 { risky_lookup(q) }";
    let helper = "pub fn risky_lookup(q: &str) -> u32 { q.parse().unwrap() }";
    let findings = lint_sources(&[
        ("crates/serve/src/router.rs", entry),
        ("crates/text/src/util.rs", helper),
    ]);
    let al007: Vec<_> = findings.iter().filter(|f| f.rule == "AL007").collect();
    assert_eq!(al007.len(), 1, "findings: {findings:?}");
    assert_eq!(al007[0].path, "crates/text/src/util.rs");
    assert!(
        al007[0].message.contains("dispatch -> risky_lookup"),
        "chain missing from: {}",
        al007[0].message
    );
}

#[test]
fn al009_covers_serve_rooted_nondeterminism_and_clock_reads() {
    // Hash-map iteration escaping through a serve entry point is AL009's.
    let entry = "pub fn dispatch(q: &str) -> u32 { risky_lookup(q) }";
    let helper = r#"
        pub fn risky_lookup(q: &str) -> u32 {
            let map: FxHashMap<String, u32> = FxHashMap::default();
            let mut n = 0;
            for (_k, v) in &map { n += v; }
            n
        }
    "#;
    let findings = lint_sources(&[
        ("crates/serve/src/router.rs", entry),
        ("crates/text/src/util.rs", helper),
    ]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "AL009" && f.message.contains("dispatch -> risky_lookup")),
        "serve-rooted escape missed: {findings:?}"
    );

    // serve is not clock-exempt: raw Instant reads must go through obs.
    let timed = "pub fn deadline() -> Instant { Instant::now() }";
    let findings = lint_sources(&[("crates/serve/src/server2.rs", timed)]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "AL009" && f.message.contains("clock")),
        "clock read in serve missed: {findings:?}"
    );
}

// ---------------------------------------------------- suppression flow

#[test]
fn workspace_findings_suppress_through_the_allowlist() {
    let helper = "pub fn risky_lookup(q: &str) -> u32 { q.parse().unwrap() }";
    let files = [
        ("crates/apps/src/serve.rs", APP_ENTRY),
        ("crates/text/src/util.rs", helper),
    ];
    let findings = lint_sources(&files);
    assert_eq!(findings.len(), 1);
    let entry = format!(
        "{} {} vetted: parse cannot fail on this input set\n",
        findings[0].rule, findings[0].fingerprint
    );
    let allow = Allowlist::parse(&entry).expect("well-formed allowlist");
    let (active, suppressed, stale) = allow.apply(findings);
    assert!(active.is_empty(), "vetted workspace finding must suppress");
    assert_eq!(suppressed.len(), 1);
    assert!(stale.is_empty());

    // Changing the flagged line invalidates the entry: active + stale.
    let changed = "pub fn risky_lookup(q: &str) -> u32 { q.trim().parse().unwrap() }";
    let findings = lint_sources(&[
        ("crates/apps/src/serve.rs", APP_ENTRY),
        ("crates/text/src/util.rs", changed),
    ]);
    let (active, suppressed, stale) = allow.apply(findings);
    assert_eq!(active.len(), 1);
    assert!(suppressed.is_empty());
    assert_eq!(stale.len(), 1);
}
