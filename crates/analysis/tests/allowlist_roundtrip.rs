//! Round-trip test for the suppression workflow: lint → take the printed
//! fingerprint → write an allowlist entry → the finding is suppressed, and
//! entries that match nothing are reported stale.

use analysis::allowlist::Allowlist;
use analysis::lint_source;

const FIXTURE_PATH: &str = "crates/core/src/query.rs";
const FIXTURE_SRC: &str = "fn serve(v: &[u32]) -> u32 { v.first().unwrap() }\n";

#[test]
fn vetted_finding_round_trips_through_the_allowlist() {
    let findings = lint_source(FIXTURE_PATH, FIXTURE_SRC);
    assert_eq!(findings.len(), 1);
    let text = format!(
        "# vetted suppressions\n{} {} reviewed 2026-08: slice is non-empty by construction\n",
        findings[0].rule, findings[0].fingerprint
    );
    let allow = Allowlist::parse(&text).expect("well-formed allowlist");
    let (active, suppressed, stale) = allow.apply(findings);
    assert!(active.is_empty(), "vetted finding must be suppressed");
    assert_eq!(suppressed.len(), 1);
    assert!(stale.is_empty());
}

#[test]
fn entries_matching_nothing_are_stale_not_silent() {
    let findings = lint_source(FIXTURE_PATH, FIXTURE_SRC);
    let allow =
        Allowlist::parse("AL001 00000000deadbeef suppresses a line that no longer exists\n")
            .expect("well-formed allowlist");
    let (active, suppressed, stale) = allow.apply(findings);
    assert_eq!(active.len(), 1, "unmatched finding stays active");
    assert!(suppressed.is_empty());
    assert_eq!(stale.len(), 1, "unused entry must be reported stale");
}

#[test]
fn suppression_expires_when_the_line_changes() {
    let findings = lint_source(FIXTURE_PATH, FIXTURE_SRC);
    let entry = format!("{} {} vetted\n", findings[0].rule, findings[0].fingerprint);
    let allow = Allowlist::parse(&entry).expect("well-formed allowlist");
    // The vetted line is edited (same rule still fires, different text).
    let changed = lint_source(
        FIXTURE_PATH,
        "fn serve(v: &[u32]) -> u32 { v.last().unwrap() }\n",
    );
    let (active, suppressed, stale) = allow.apply(changed);
    assert_eq!(active.len(), 1, "edited line needs re-review");
    assert!(suppressed.is_empty());
    assert_eq!(stale.len(), 1);
}

#[test]
fn fingerprint_shown_to_the_user_is_what_the_allowlist_matches() {
    // The binary prints `RULE FINGERPRINT <justification>` as the suggested
    // entry; pasting it with any note must parse to a matching entry.
    let findings = lint_source(FIXTURE_PATH, FIXTURE_SRC);
    let pasted = format!(
        "{} {}  my reason here\n",
        findings[0].rule, findings[0].fingerprint
    );
    let allow = Allowlist::parse(&pasted).expect("pasted suggestion parses");
    assert_eq!(allow.entries[0].fingerprint, findings[0].fingerprint);
    assert_eq!(allow.entries[0].note, "my reason here");
}
