//! A hand-rolled Rust lexer — the foundation of `alicoco-lint`.
//!
//! The workspace builds without crates.io, so there is no `syn` or
//! `proc-macro2` to lean on; instead this module tokenizes Rust source
//! directly. The rules only need a faithful token stream — identifiers,
//! punctuation, and (crucially) *correctly skipped* comments, string
//! literals, and char-vs-lifetime disambiguation — not a full AST. Every
//! token carries its line and column so findings point at real source
//! locations.

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `unsafe`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Numeric literal (`42`, `0.5f32`, `1e-3`, `0xff_u8`).
    Number,
    /// String literal of any flavour (`".."`, `r#".."#`, `b".."`).
    Str,
    /// Character or byte literal (`'x'`, `'\n'`, `b'a'` lexes as `b` + `'a'`).
    Char,
    /// A single punctuation character (`.`, `{`, `!`, ...).
    Punct,
    /// Line or block comment, text included (`// ..`, `/* .. */`).
    Comment,
}

/// One lexeme with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Token {
    /// Kind.
    pub kind: TokenKind,
    /// Raw text of the lexeme.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Number of `#` + `"` making a raw-string opener at the cursor, if any.
/// The cursor sits just past the `r` (or `br`) prefix.
fn raw_string_hashes(cur: &Cursor) -> Option<usize> {
    let mut n = 0;
    while cur.peek(n) == Some('#') {
        n += 1;
    }
    if cur.peek(n) == Some('"') {
        Some(n)
    } else {
        None
    }
}

/// Tokenize Rust source. The lexer never fails: unexpected characters come
/// out as [`TokenKind::Punct`] tokens, and unterminated literals simply end
/// at end-of-file — for a lint over code that already compiles, that is
/// always good enough.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.push(Token {
                kind: TokenKind::Comment,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            while let Some(ch) = cur.peek(0) {
                if ch == '/' && cur.peek(1) == Some('*') {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    cur.bump();
                    cur.bump();
                } else if ch == '*' && cur.peek(1) == Some('/') {
                    depth -= 1;
                    text.push('*');
                    text.push('/');
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(ch);
                    cur.bump();
                }
            }
            out.push(Token {
                kind: TokenKind::Comment,
                text,
                line,
                col,
            });
            continue;
        }
        // Identifiers, and the raw/byte string prefixes that look like them.
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if is_ident_continue(ch) {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            // `r`, `b`, `br` immediately followed by a (raw) string opener
            // are literal prefixes, not identifiers.
            let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br" | "c" | "cr");
            if is_str_prefix {
                if let Some(hashes) = raw_string_hashes(&cur) {
                    let body = lex_raw_string(&mut cur, hashes);
                    out.push(Token {
                        kind: TokenKind::Str,
                        text: format!("{text}{body}"),
                        line,
                        col,
                    });
                    continue;
                }
            }
            out.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '"' {
            let body = lex_plain_string(&mut cur);
            out.push(Token {
                kind: TokenKind::Str,
                text: body,
                line,
                col,
            });
            continue;
        }
        if c == '\'' {
            let tok = lex_char_or_lifetime(&mut cur);
            out.push(Token {
                kind: tok.0,
                text: tok.1,
                line,
                col,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let text = lex_number(&mut cur);
            out.push(Token {
                kind: TokenKind::Number,
                text,
                line,
                col,
            });
            continue;
        }
        // Everything else: one punctuation character per token.
        cur.bump();
        out.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    out
}

/// Cursor sits on `#`*n `"`; consumes through the matching `"` `#`*n.
fn lex_raw_string(cur: &mut Cursor, hashes: usize) -> String {
    let mut text = String::new();
    for _ in 0..hashes {
        text.push('#');
        cur.bump();
    }
    text.push('"');
    cur.bump();
    while let Some(ch) = cur.peek(0) {
        if ch == '"' {
            let mut n = 0;
            while n < hashes && cur.peek(1 + n) == Some('#') {
                n += 1;
            }
            if n == hashes {
                text.push('"');
                cur.bump();
                for _ in 0..hashes {
                    text.push('#');
                    cur.bump();
                }
                return text;
            }
        }
        text.push(ch);
        cur.bump();
    }
    text
}

/// Cursor sits on the opening `"`.
fn lex_plain_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    text.push('"');
    cur.bump();
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            text.push(ch);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        text.push(ch);
        cur.bump();
        if ch == '"' {
            break;
        }
    }
    text
}

/// Cursor sits on `'`. Disambiguates `'a'` (char) from `'a` (lifetime):
/// an identifier run after the quote is a char literal only when a closing
/// quote follows immediately.
fn lex_char_or_lifetime(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    text.push('\'');
    cur.bump();
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume escape, then through closing '.
            text.push('\\');
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            while let Some(ch) = cur.bump() {
                text.push(ch);
                if ch == '\'' {
                    break;
                }
            }
            (TokenKind::Char, text)
        }
        Some(ch) if is_ident_start(ch) => {
            let mut n = 0;
            while cur.peek(n).is_some_and(is_ident_continue) {
                n += 1;
            }
            if cur.peek(n) == Some('\'') {
                // 'x' — a char literal.
                for _ in 0..=n {
                    if let Some(c2) = cur.bump() {
                        text.push(c2);
                    }
                }
                (TokenKind::Char, text)
            } else {
                // 'ident — a lifetime.
                for _ in 0..n {
                    if let Some(c2) = cur.bump() {
                        text.push(c2);
                    }
                }
                (TokenKind::Lifetime, text)
            }
        }
        Some(_) => {
            // Punctuation char literal: ' ' , '-' , '(' ...
            if let Some(ch) = cur.bump() {
                text.push(ch);
            }
            if cur.peek(0) == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            (TokenKind::Char, text)
        }
        None => (TokenKind::Punct, text),
    }
}

/// Cursor sits on a digit.
fn lex_number(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while let Some(ch) = cur.peek(0) {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            text.push(ch);
            cur.bump();
            // Exponent sign: `1e-3`, `2.5E+7`.
            if (ch == 'e' || ch == 'E')
                && matches!(cur.peek(0), Some('+') | Some('-'))
                && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
                && text.chars().next().is_some_and(|f| f.is_ascii_digit())
                && !text.starts_with("0x")
                && !text.starts_with("0b")
                && !text.starts_with("0o")
            {
                if let Some(sign) = cur.bump() {
                    text.push(sign);
                }
            }
        } else if ch == '.'
            && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
            && !text.contains('.')
        {
            // Fractional part — but never eat the `..` of a range.
            text.push(ch);
            cur.bump();
        } else {
            break;
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let t = kinds("let x = v[i + 1];");
        assert_eq!(
            t.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Number,
                TokenKind::Punct,
                TokenKind::Punct,
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let t = kinds(r#"let s = "x.unwrap() // not a comment";"#);
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokenKind::Str && s.contains("unwrap")));
        assert!(!t
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let t = kinds(r##"let s = r#"quote " inside"#; after"##);
        assert!(t.iter().any(|(k, _)| *k == TokenKind::Str));
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "after"));
    }

    #[test]
    fn char_vs_lifetime() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = t.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("/* outer /* inner */ still */ x");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].0, TokenKind::Comment);
        assert_eq!(t[1].1, "x");
    }

    #[test]
    fn ranges_are_not_floats() {
        let t = kinds("for i in 0..10 {}");
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Number && s == "0"));
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Number && s == "10"));
        assert!(t.iter().filter(|(_, s)| s == ".").count() == 2);
    }

    #[test]
    fn float_and_exponent_literals() {
        let t = kinds("let a = 1.5f32; let b = 1e-3; let c = 2.max(3);");
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokenKind::Number && s == "1.5f32"));
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokenKind::Number && s == "1e-3"));
        // `2.max` must not eat the dot.
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Number && s == "2"));
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Ident && s == "max"));
    }

    #[test]
    fn line_and_column_positions() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
