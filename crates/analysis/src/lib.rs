//! `alicoco-lint`: in-tree static analysis for the AliCoCo workspace.
//!
//! The workspace's hardest-won properties — byte-identical training and
//! serialization, NaN-safe total-order ranking, panic-free serving paths,
//! deadlock-free parameter locking — are invariants the Rust compiler
//! cannot check. This crate checks them. It is deliberately dependency-free
//! (no `syn`, no crates.io): a hand-rolled lexer ([`lexer`]) feeds a
//! lightweight structural pass ([`parse`]) feeds six rules ([`rules`]),
//! and findings can be suppressed only through a fingerprinted, justified
//! allowlist ([`allowlist`]).
//!
//! Run it with:
//!
//! ```text
//! cargo run -p analysis --bin alicoco-lint
//! ```

#![warn(missing_docs)]

pub mod allowlist;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// A finalized finding: a rule hit plus its source snippet and stable
/// fingerprint.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id, `AL001`..`AL006`.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
    /// The trimmed source line the finding points at.
    pub snippet: String,
    /// Stable identity for allowlisting; see [`fingerprint`].
    pub fingerprint: String,
}

/// FNV-1a 64-bit over the finding's identity: rule, file, normalized
/// source line, and the ordinal among identical lines in that file. Line
/// numbers are deliberately excluded so unrelated edits above a vetted
/// finding do not invalidate its allowlist entry; editing the flagged line
/// itself does.
pub fn fingerprint(rule: &str, path: &str, snippet: &str, ordinal: u32) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in [rule, "|", path, "|", snippet, "|"] {
        for b in chunk.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    for b in ordinal.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Lint one file's source, returning findings sorted by position.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let toks = lexer::lex(src);
    let ctx = parse::FileCtx::new(path, &toks);
    let mut raw = rules::run_all(&ctx);
    raw.sort_by(|a, b| {
        (a.line, a.col, a.rule)
            .cmp(&(b.line, b.col, b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
    let lines: Vec<&str> = src.lines().collect();
    let mut ordinals: HashMap<(&'static str, String), u32> = HashMap::new();
    raw.into_iter()
        .map(|r| {
            let snippet = lines
                .get(r.line as usize - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default();
            let ord = ordinals
                .entry((r.rule, snippet.clone()))
                .and_modify(|o| *o += 1)
                .or_insert(0);
            Finding {
                fingerprint: fingerprint(r.rule, path, &snippet, *ord),
                rule: r.rule,
                path: path.to_string(),
                line: r.line,
                col: r.col,
                message: r.message,
                snippet,
            }
        })
        .collect()
}

/// Lint every `.rs` file under `<root>/crates`, in deterministic path
/// order. `target/` directories are skipped. Returns findings sorted by
/// (path, line, col).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&file)?;
        out.extend(lint_source(&rel, &src));
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" {
                collect_rs_files(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let a = fingerprint("AL001", "crates/x.rs", "v[i]", 0);
        let b = fingerprint("AL001", "crates/x.rs", "v[i]", 0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert_ne!(a, fingerprint("AL001", "crates/x.rs", "v[i]", 1));
        assert_ne!(a, fingerprint("AL002", "crates/x.rs", "v[i]", 0));
        assert_ne!(a, fingerprint("AL001", "crates/y.rs", "v[i]", 0));
    }

    #[test]
    fn duplicate_lines_get_distinct_ordinals() {
        let src = "fn a() -> usize { v[i] + v[i] }\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 2);
        assert_ne!(f[0].fingerprint, f[1].fingerprint);
    }

    #[test]
    fn fingerprint_survives_line_shifts() {
        let before = lint_source("crates/core/src/x.rs", "fn a() { v.unwrap(); }\n");
        let after = lint_source(
            "crates/core/src/x.rs",
            "//! New header comment.\n\nfn a() { v.unwrap(); }\n",
        );
        assert_eq!(before.len(), 1);
        assert_eq!(after.len(), 1);
        assert_eq!(before[0].fingerprint, after[0].fingerprint);
        assert_ne!(before[0].line, after[0].line);
    }
}
