//! `alicoco-lint`: in-tree static analysis for the AliCoCo workspace.
//!
//! The workspace's hardest-won properties — byte-identical training and
//! serialization, NaN-safe total-order ranking, panic-free serving paths,
//! deadlock-free parameter locking — are invariants the Rust compiler
//! cannot check. This crate checks them. It is deliberately dependency-free
//! (no `syn`, no crates.io): a hand-rolled lexer ([`lexer`]) feeds a
//! lightweight structural pass ([`parse`]) feeds six per-file rules
//! ([`rules`]); per-file symbol summaries ([`symbols`]) then feed a
//! workspace call graph ([`callgraph`]) running three inter-procedural
//! rules (panic-reachability, lock-order cycles, nondeterminism escape).
//! Findings can be suppressed only through a fingerprinted, justified
//! allowlist ([`allowlist`]); per-file results are cached by content hash
//! ([`cache`]) and reports export as JSON ([`report`]) or SARIF 2.1.0
//! ([`sarif`]).
//!
//! Run it with:
//!
//! ```text
//! cargo run -p analysis --bin alicoco-lint
//! ```

#![warn(missing_docs)]

pub mod allowlist;
pub mod cache;
pub mod callgraph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod symbols;

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// A finalized finding: a rule hit plus its source snippet and stable
/// fingerprint.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id, `AL001`..`AL009`.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
    /// The trimmed source line the finding points at.
    pub snippet: String,
    /// Stable identity for allowlisting; see [`fingerprint`].
    pub fingerprint: String,
}

/// FNV-1a 64-bit over the finding's identity: rule, file, normalized
/// source line, and the ordinal among identical lines in that file. Line
/// numbers are deliberately excluded so unrelated edits above a vetted
/// finding do not invalidate its allowlist entry; editing the flagged line
/// itself does.
pub fn fingerprint(rule: &str, path: &str, snippet: &str, ordinal: u32) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in [rule, "|", path, "|", snippet, "|"] {
        for b in chunk.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    for b in ordinal.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// The complete per-file analysis artifact: local-rule findings plus the
/// symbol summary the workspace phase consumes. This pair is exactly what
/// the incremental cache ([`cache`]) stores, so a warm run never re-lexes
/// an unchanged file and the call-graph phase sees bit-identical inputs.
#[derive(Clone, Debug)]
pub struct FileAnalysis {
    /// Findings from the per-file rules (AL001..AL006).
    pub findings: Vec<Finding>,
    /// Symbol summary feeding the workspace rules (AL007..AL009).
    pub summary: symbols::FileSummary,
}

/// Run the per-file rules *and* symbol extraction over one source file.
pub fn analyze_source(path: &str, src: &str) -> FileAnalysis {
    let toks = lexer::lex(src);
    let ctx = parse::FileCtx::new(path, &toks);
    let mut raw = rules::run_all(&ctx);
    raw.sort_by(|a, b| {
        (a.line, a.col, a.rule)
            .cmp(&(b.line, b.col, b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
    let lines: Vec<&str> = src.lines().collect();
    let mut ordinals: HashMap<(&'static str, String), u32> = HashMap::new();
    let findings = raw
        .into_iter()
        .map(|r| {
            let snippet = lines
                .get(r.line as usize - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default();
            let ord = ordinals
                .entry((r.rule, snippet.clone()))
                .and_modify(|o| *o += 1)
                .or_insert(0);
            Finding {
                fingerprint: fingerprint(r.rule, path, &snippet, *ord),
                rule: r.rule,
                path: path.to_string(),
                line: r.line,
                col: r.col,
                message: r.message,
                snippet,
            }
        })
        .collect();
    FileAnalysis {
        findings,
        summary: symbols::summarize(&ctx, src),
    }
}

/// Lint one file's source with the per-file rules only, returning findings
/// sorted by position.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    analyze_source(path, src).findings
}

/// Lint a set of in-memory sources as one miniature workspace: per-file
/// rules plus the call-graph rules (AL007..AL009). The fixture entry point
/// for workspace-rule tests; paths should look like real workspace paths
/// (`crates/<name>/src/...`) so scope filters apply.
pub fn lint_sources(files: &[(&str, &str)]) -> Vec<Finding> {
    let mut sorted: Vec<(&str, &str)> = files.to_vec();
    sorted.sort();
    let mut out = Vec::new();
    let mut summaries = Vec::new();
    for (path, src) in &sorted {
        let a = analyze_source(path, src);
        out.extend(a.findings);
        summaries.push(a.summary);
    }
    out.extend(callgraph::run(&summaries));
    sort_findings(&mut out);
    out
}

/// Global finding order: (path, line, col, rule, message).
pub(crate) fn sort_findings(out: &mut [Finding]) {
    out.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule, &a.message)
            .cmp(&(&b.path, b.line, b.col, b.rule, &b.message))
    });
}

/// Options controlling a workspace lint run.
#[derive(Clone, Debug, Default)]
pub struct LintOptions {
    /// Incremental cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
}

/// Outcome of a workspace lint run: findings plus cache statistics.
#[derive(Clone, Debug)]
pub struct LintRun {
    /// All findings (per-file and workspace rules), globally sorted.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files analyzed or loaded from cache.
    pub files_seen: usize,
    /// How many of those were served from the incremental cache.
    pub cache_hits: usize,
}

/// Lint every `.rs` file under `<root>/crates` (skipping `target/`), then
/// run the workspace call-graph rules over the per-file summaries.
/// Per-file analysis fans out across threads; results are re-sorted into
/// deterministic (path, line, col, rule, message) order before returning.
pub fn lint_workspace_with(root: &Path, opts: &LintOptions) -> io::Result<LintRun> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    files.sort();
    let rels: Vec<String> = files
        .iter()
        .map(|file| {
            file.strip_prefix(root)
                .unwrap_or(file)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    let store = match &opts.cache_dir {
        Some(dir) => Some(cache::Store::open(dir)?),
        None => None,
    };
    let analyses = analyze_files_parallel(&files, &rels, store.as_ref())?;
    let cache_hits = analyses.iter().filter(|(_, hit)| *hit).count();
    let mut findings = Vec::new();
    let mut summaries = Vec::new();
    for (a, _) in analyses {
        findings.extend(a.findings);
        summaries.push(a.summary);
    }
    findings.extend(callgraph::run(&summaries));
    sort_findings(&mut findings);
    Ok(LintRun {
        findings,
        files_seen: files.len(),
        cache_hits,
    })
}

/// Back-compat single-call entry point: cacheless workspace lint.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(lint_workspace_with(root, &LintOptions::default())?.findings)
}

/// Fan per-file analysis out over `std::thread::scope`. Each worker owns a
/// disjoint index range, so results land in walk order and the final sort
/// sees identical input regardless of thread count. Returns per file the
/// analysis and whether it came from the cache.
fn analyze_files_parallel(
    files: &[PathBuf],
    rels: &[String],
    store: Option<&cache::Store>,
) -> io::Result<Vec<(FileAnalysis, bool)>> {
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(files.len().max(1))
        .min(8);
    let chunk = files.len().div_ceil(workers.max(1)).max(1);
    let mut slots: Vec<io::Result<(FileAnalysis, bool)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (wi, file_chunk) in files.chunks(chunk).enumerate() {
            let rel_chunk = &rels[wi * chunk..wi * chunk + file_chunk.len()];
            handles.push(scope.spawn(move || {
                let mut out = Vec::with_capacity(file_chunk.len());
                for (file, rel) in file_chunk.iter().zip(rel_chunk) {
                    out.push(analyze_one(file, rel, store));
                }
                out
            }));
        }
        for h in handles {
            slots.extend(h.join().expect("lint worker panicked"));
        }
    });
    slots.into_iter().collect()
}

/// Analyze one file, consulting the cache when available.
fn analyze_one(
    file: &Path,
    rel: &str,
    store: Option<&cache::Store>,
) -> io::Result<(FileAnalysis, bool)> {
    let src = std::fs::read_to_string(file)?;
    if let Some(store) = store {
        let key = cache::content_key(rel, &src);
        if let Some(hit) = store.load_entry(&key)? {
            return Ok((hit, true));
        }
        let analysis = analyze_source(rel, &src);
        store.save(&key, &analysis)?;
        return Ok((analysis, false));
    }
    Ok((analyze_source(rel, &src), false))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" {
                collect_rs_files(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let a = fingerprint("AL001", "crates/x.rs", "v[i]", 0);
        let b = fingerprint("AL001", "crates/x.rs", "v[i]", 0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert_ne!(a, fingerprint("AL001", "crates/x.rs", "v[i]", 1));
        assert_ne!(a, fingerprint("AL002", "crates/x.rs", "v[i]", 0));
        assert_ne!(a, fingerprint("AL001", "crates/y.rs", "v[i]", 0));
    }

    #[test]
    fn duplicate_lines_get_distinct_ordinals() {
        let src = "fn a() -> usize { v[i] + v[i] }\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 2);
        assert_ne!(f[0].fingerprint, f[1].fingerprint);
    }

    #[test]
    fn fingerprint_survives_line_shifts() {
        let before = lint_source("crates/core/src/x.rs", "fn a() { v.unwrap(); }\n");
        let after = lint_source(
            "crates/core/src/x.rs",
            "//! New header comment.\n\nfn a() { v.unwrap(); }\n",
        );
        assert_eq!(before.len(), 1);
        assert_eq!(after.len(), 1);
        assert_eq!(before[0].fingerprint, after[0].fingerprint);
        assert_ne!(before[0].line, after[0].line);
    }
}
