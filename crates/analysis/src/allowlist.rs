//! Vetted-suppression allowlist.
//!
//! Findings the team has reviewed and accepted are recorded in
//! `lint-allow.txt` at the workspace root, one per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! AL001 8c2f1a0b9d3e4f56 crates/core/src/ids.rs — id_type! guards a u32 arena invariant
//! ```
//!
//! The second column is the finding's *fingerprint*: a hash of the rule,
//! file, normalized source line and occurrence ordinal. Fingerprints
//! survive unrelated edits (they do not embed line numbers) but expire when
//! the offending line itself changes — a stale entry is reported so the
//! allowlist never silently outlives the code it vetted. Every entry must
//! carry a justification after the fingerprint.

use crate::Finding;

/// One vetted suppression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Finding fingerprint (16 hex chars).
    pub fingerprint: String,
    /// Mandatory justification.
    pub note: String,
}

/// A parsed allowlist file.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<Entry>,
}

impl Allowlist {
    /// The empty allowlist (used when no file exists).
    pub fn empty() -> Self {
        Allowlist::default()
    }

    /// Parse the allowlist format. Malformed lines are hard errors — a
    /// typo'd fingerprint would otherwise silently suppress nothing.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let rule = parts.next().unwrap_or_default();
            let fp = parts.next().unwrap_or_default();
            let note = parts.next().unwrap_or_default().trim();
            let rule_ok = rule.len() == 5
                && rule.starts_with("AL")
                && rule[2..].chars().all(|c| c.is_ascii_digit());
            if !rule_ok {
                return Err(format!(
                    "allowlist line {}: expected a rule id like `AL001`, got `{rule}`",
                    i + 1
                ));
            }
            let fp_ok = fp.len() == 16 && fp.chars().all(|c| c.is_ascii_hexdigit());
            if !fp_ok {
                return Err(format!(
                    "allowlist line {}: expected a 16-hex-char fingerprint, got `{fp}`",
                    i + 1
                ));
            }
            if note.is_empty() {
                return Err(format!(
                    "allowlist line {}: a justification is required after the fingerprint",
                    i + 1
                ));
            }
            entries.push(Entry {
                rule: rule.to_string(),
                fingerprint: fp.to_lowercase(),
                note: note.to_string(),
            });
        }
        Ok(Allowlist { entries })
    }

    /// Split findings into (active, suppressed) and report entries that
    /// matched nothing (stale — the vetted line changed or was fixed).
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>, Vec<Entry>) {
        let mut active = Vec::new();
        let mut suppressed = Vec::new();
        let mut used = vec![false; self.entries.len()];
        for f in findings {
            let hit = self
                .entries
                .iter()
                .position(|e| e.rule == f.rule && e.fingerprint == f.fingerprint);
            match hit {
                Some(i) => {
                    used[i] = true;
                    suppressed.push(f);
                }
                None => active.push(f),
            }
        }
        let stale = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(e, _)| e.clone())
            .collect();
        (active, suppressed, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_entries() {
        let text = "# header\n\nAL001 0123456789abcdef vetted: id arena bound\n";
        let al = Allowlist::parse(text).expect("parses");
        assert_eq!(al.entries.len(), 1);
        assert_eq!(al.entries[0].rule, "AL001");
        assert_eq!(al.entries[0].note, "vetted: id arena bound");
    }

    #[test]
    fn rejects_bad_fingerprints_and_missing_notes() {
        assert!(Allowlist::parse("AL001 xyz note").is_err());
        assert!(Allowlist::parse("AL001 0123456789abcdef").is_err());
        assert!(Allowlist::parse("BAD 0123456789abcdef note").is_err());
    }
}
