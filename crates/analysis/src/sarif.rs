//! SARIF 2.1.0 emitter (hand-rolled JSON; the workspace has no serde).
//!
//! CI annotation services ingest SARIF natively, so next to the bespoke
//! JSON report ([`crate::report`]) the CLI can emit a standards-shaped
//! document. Mapping:
//!
//! - each [`Finding`] → one `result`; active findings at `"error"` level,
//!   allowlisted ones at `"note"` with a `suppressions` entry carrying the
//!   allowlist justification (`kind: "external"`, `status: "accepted"`);
//! - the finding fingerprint → `partialFingerprints` under the
//!   `alicocoLint/v1` key, so annotation dedup tracks the same identity the
//!   allowlist does (line-shift tolerant, expires when the line changes);
//! - rule ids AL001..AL009 → `tool.driver.rules` with short descriptions.
//!
//! Output is deterministic: findings arrive pre-sorted and the emitter
//! adds no timestamps or absolute paths (URIs are workspace-relative).

use crate::allowlist::Allowlist;
use crate::report::json_escape;
use crate::Finding;

/// Rule metadata for `tool.driver.rules`.
const RULES: &[(&str, &str)] = &[
    (
        "AL001",
        "No panic-prone patterns (unwrap/expect/indexing) in serving code",
    ),
    (
        "AL002",
        "Float comparisons must go through the total-order helpers",
    ),
    (
        "AL003",
        "No lock-guard use across await-free long spans / guard hygiene",
    ),
    (
        "AL004",
        "No nested acquisition of the same lock in one scope",
    ),
    (
        "AL005",
        "Hash-collection iteration feeding serialization must be canonicalized",
    ),
    ("AL006", "Public APIs document their panics and invariants"),
    (
        "AL007",
        "Public serving APIs must not transitively reach a panic site",
    ),
    (
        "AL008",
        "Lock acquisition order must be globally consistent (no cycles)",
    ),
    (
        "AL009",
        "Nondeterminism (hash order, clock reads) must not escape into outputs",
    ),
];

fn result_json(f: &Finding, suppression_note: Option<&str>, indent: &str) -> String {
    let level = if suppression_note.is_some() {
        "note"
    } else {
        "error"
    };
    let mut out = String::new();
    out.push_str(&format!("{indent}{{\n"));
    out.push_str(&format!("{indent}  \"ruleId\": \"{}\",\n", f.rule));
    out.push_str(&format!("{indent}  \"level\": \"{level}\",\n"));
    out.push_str(&format!(
        "{indent}  \"message\": {{\"text\": \"{}\"}},\n",
        json_escape(&f.message)
    ));
    out.push_str(&format!(
        "{indent}  \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}, \"snippet\": {{\"text\": \"{}\"}}}}}}}}],\n",
        json_escape(&f.path),
        f.line,
        f.col,
        json_escape(&f.snippet)
    ));
    out.push_str(&format!(
        "{indent}  \"partialFingerprints\": {{\"alicocoLint/v1\": \"{}\"}}",
        f.fingerprint
    ));
    if let Some(note) = suppression_note {
        out.push_str(&format!(
            ",\n{indent}  \"suppressions\": [{{\"kind\": \"external\", \"status\": \"accepted\", \"justification\": \"{}\"}}]",
            json_escape(note)
        ));
    }
    out.push_str(&format!("\n{indent}}}"));
    out
}

/// Render the SARIF document. `allow` supplies justifications for
/// suppressed findings (matched by rule + fingerprint).
pub fn to_sarif(active: &[Finding], suppressed: &[Finding], allow: &Allowlist) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"alicoco-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/alicoco-lint\",\n");
    out.push_str("          \"rules\": [\n");
    let rules: Vec<String> = RULES
        .iter()
        .map(|(id, desc)| {
            format!(
                "            {{\"id\": \"{id}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
                json_escape(desc)
            )
        })
        .collect();
    out.push_str(&rules.join(",\n"));
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let mut rows: Vec<String> = Vec::new();
    for f in active {
        rows.push(result_json(f, None, "        "));
    }
    for f in suppressed {
        let note = allow
            .entries
            .iter()
            .find(|e| e.rule == f.rule && e.fingerprint == f.fingerprint)
            .map(|e| e.note.as_str())
            .unwrap_or("vetted");
        rows.push(result_json(f, Some(note), "        "));
    }
    out.push_str(&rows.join(",\n"));
    if !rows.is_empty() {
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str) -> Finding {
        Finding {
            rule,
            path: "crates/core/src/x.rs".into(),
            line: 4,
            col: 9,
            message: "a \"quoted\" message".into(),
            snippet: "let x = v[i];".into(),
            fingerprint: "0123456789abcdef".into(),
        }
    }

    #[test]
    fn emits_required_sarif_fields() {
        let doc = to_sarif(&[finding("AL007")], &[], &Allowlist::empty());
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("\"ruleId\": \"AL007\""));
        assert!(doc.contains("\"level\": \"error\""));
        assert!(doc.contains("\"startLine\": 4"));
        assert!(doc.contains("\"alicocoLint/v1\": \"0123456789abcdef\""));
        assert!(doc.contains("a \\\"quoted\\\" message"));
        // All nine rules declared.
        for (id, _) in RULES {
            assert!(doc.contains(&format!("\"id\": \"{id}\"")), "{id} missing");
        }
    }

    #[test]
    fn suppressed_findings_carry_justifications() {
        let allow = Allowlist::parse("AL001 0123456789abcdef vetted: bounded by arena\n").unwrap();
        let doc = to_sarif(&[], &[finding("AL001")], &allow);
        assert!(doc.contains("\"level\": \"note\""));
        assert!(doc.contains("\"status\": \"accepted\""));
        assert!(doc.contains("vetted: bounded by arena"));
    }
}
