//! Incremental analysis cache: per-file [`FileAnalysis`] artifacts keyed
//! by content hash.
//!
//! A cache entry stores everything the per-file phase produces — local
//! findings *and* the symbol summary — so a warm run never re-lexes an
//! unchanged file, and the workspace phase ([`crate::callgraph`]) sees
//! bit-identical inputs whether an entry was computed or loaded. The key
//! hashes the workspace-relative path and the file bytes, so any edit (or
//! rename) misses naturally; nothing ever needs invalidation by hand.
//!
//! Entries are plain text: a version header line, then tab-separated,
//! escape-encoded records. Two failure modes are deliberately distinct:
//!
//! - **Version mismatch** (rules or format changed): silent miss, the file
//!   is re-analyzed and the entry overwritten.
//! - **Corrupt body under a valid header** (torn write survived the atomic
//!   rename, bit rot, manual tampering): an [`io::ErrorKind::InvalidData`]
//!   error, which the CLI maps to exit code 2 — a cache that lies must
//!   never silently shape findings.
//!
//! Writes go through a temp file + rename so concurrent lint runs and
//! killed processes leave either the old entry or the new one, not a torn
//! hybrid.
//!
//! Bump [`FORMAT_VERSION`] whenever rule logic, the summary shape, or the
//! record encoding changes — the version participates in the header check,
//! turning every stale entry into a miss.

use std::io;
use std::path::{Path, PathBuf};

use crate::symbols::{
    CallKind, CallSite, FileSummary, FnInfo, LockAcq, RecvHint, Site, StructInfo,
};
use crate::{FileAnalysis, Finding};

/// Cache format + rule-generation version. Part of the entry header; any
/// mismatch is a miss.
pub const FORMAT_VERSION: u32 = 1;

/// Header line prefix; the version follows.
const HEADER_PREFIX: &str = "alicoco-lint-cache v";

/// Rule ids whose findings may appear in cached artifacts. `Finding.rule`
/// is `&'static str`, so deserialization re-interns against this table.
const KNOWN_RULES: &[&str] = &[
    "AL001", "AL002", "AL003", "AL004", "AL005", "AL006", "AL007", "AL008", "AL009",
];

/// A directory of cache entries.
pub struct Store {
    dir: PathBuf,
}

/// Content key for one file: FNV-1a over the workspace-relative path and
/// the source bytes. Doubles as the entry's file name.
pub fn content_key(rel_path: &str, src: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in [rel_path.as_bytes(), b"|", src.as_bytes()] {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

impl Store {
    /// Open (creating if needed) a cache directory.
    pub fn open(dir: &Path) -> io::Result<Store> {
        std::fs::create_dir_all(dir)?;
        Ok(Store {
            dir: dir.to_path_buf(),
        })
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.lint"))
    }

    /// Load the entry for `key`. `Ok(None)` on miss or version mismatch;
    /// `Err(InvalidData)` when the body is corrupt under a valid header.
    pub fn load_entry(&self, key: &str) -> io::Result<Option<FileAnalysis>> {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h == format!("{HEADER_PREFIX}{FORMAT_VERSION}") => {}
            // Older/newer generation or no header at all: plain miss.
            _ => return Ok(None),
        }
        decode_body(lines).map(Some).map_err(|msg| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt lint cache entry {}: {msg}", path.display()),
            )
        })
    }

    /// Persist an entry atomically (temp file + rename).
    pub fn save(&self, key: &str, analysis: &FileAnalysis) -> io::Result<()> {
        let mut text = format!("{HEADER_PREFIX}{FORMAT_VERSION}\n");
        encode_body(analysis, &mut text);
        let tmp = self.dir.join(format!(".{key}.tmp"));
        std::fs::write(&tmp, &text)?;
        std::fs::rename(&tmp, self.entry_path(key))
    }
}

// ------------------------------------------------------------ records

/// Escape one field: `\` `\t` `\n` `\r` become two-character sequences so
/// fields can hold arbitrary snippets yet split on raw tabs/newlines.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            _ => return Err("bad escape".to_string()),
        }
    }
    Ok(out)
}

fn push_record(out: &mut String, fields: &[&str]) {
    let escaped: Vec<String> = fields.iter().map(|f| esc(f)).collect();
    out.push_str(&escaped.join("\t"));
    out.push('\n');
}

fn split_record(line: &str) -> Result<Vec<String>, String> {
    line.split('\t').map(unesc).collect()
}

fn site_fields(s: &Site) -> [String; 4] {
    [
        s.line.to_string(),
        s.col.to_string(),
        s.snippet.clone(),
        s.what.clone(),
    ]
}

fn encode_body(analysis: &FileAnalysis, out: &mut String) {
    for f in &analysis.findings {
        push_record(
            out,
            &[
                "F",
                f.rule,
                &f.path,
                &f.line.to_string(),
                &f.col.to_string(),
                &f.message,
                &f.snippet,
                &f.fingerprint,
            ],
        );
    }
    let s = &analysis.summary;
    push_record(out, &["S", &s.path]);
    if !s.types.is_empty() {
        let mut fields: Vec<&str> = vec!["D"];
        fields.extend(s.types.iter().map(String::as_str));
        push_record(out, &fields);
    }
    for st in &s.structs {
        let mut fields: Vec<String> = vec!["T".to_string(), st.name.clone()];
        for (name, ty, is_lock) in &st.fields {
            fields.push(name.clone());
            fields.push(ty.clone());
            fields.push(if *is_lock { "1" } else { "0" }.to_string());
        }
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        push_record(out, &refs);
    }
    for f in &s.functions {
        push_record(
            out,
            &[
                "N",
                &f.name,
                f.self_type.as_deref().unwrap_or(""),
                if f.self_type.is_some() { "1" } else { "0" },
                if f.has_self { "1" } else { "0" },
                if f.is_pub { "1" } else { "0" },
                if f.is_test { "1" } else { "0" },
                &f.line.to_string(),
                f.ret_type.as_deref().unwrap_or(""),
                if f.ret_type.is_some() { "1" } else { "0" },
            ],
        );
        for c in &f.calls {
            let (kind_tag, kind_arg) = match &c.kind {
                CallKind::Method => ("m", ""),
                CallKind::Path(q) => ("p", q.as_str()),
                CallKind::Free => ("f", ""),
            };
            let (recv_tag, recv_arg) = match &c.recv {
                RecvHint::SelfType => ("s", ""),
                RecvHint::SelfField(f) => ("d", f.as_str()),
                RecvHint::Known(t) => ("k", t.as_str()),
                RecvHint::Unknown => ("u", ""),
            };
            let mut fields: Vec<String> = vec![
                "C".to_string(),
                c.name.clone(),
                kind_tag.to_string(),
                kind_arg.to_string(),
                recv_tag.to_string(),
                recv_arg.to_string(),
                c.line.to_string(),
            ];
            fields.extend(c.held.iter().cloned());
            let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
            push_record(out, &refs);
        }
        for p in &f.panics {
            let sf = site_fields(p);
            push_record(out, &["X", &sf[0], &sf[1], &sf[2], &sf[3]]);
        }
        for l in &f.locks {
            let sf = site_fields(&l.site);
            let mut fields: Vec<String> = vec![
                "K".to_string(),
                l.chain.clone(),
                sf[0].clone(),
                sf[1].clone(),
                sf[2].clone(),
                sf[3].clone(),
            ];
            fields.extend(l.held.iter().cloned());
            let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
            push_record(out, &refs);
        }
        for h in &f.hash_iters {
            let sf = site_fields(h);
            push_record(out, &["I", &sf[0], &sf[1], &sf[2], &sf[3]]);
        }
        for w in &f.clock_reads {
            let sf = site_fields(w);
            push_record(out, &["W", &sf[0], &sf[1], &sf[2], &sf[3]]);
        }
    }
}

fn parse_u32(s: &str) -> Result<u32, String> {
    s.parse::<u32>().map_err(|_| format!("bad number `{s}`"))
}

fn parse_bool(s: &str) -> Result<bool, String> {
    match s {
        "1" => Ok(true),
        "0" => Ok(false),
        _ => Err(format!("bad flag `{s}`")),
    }
}

fn parse_opt(value: &str, present: &str) -> Result<Option<String>, String> {
    Ok(if parse_bool(present)? {
        Some(value.to_string())
    } else {
        None
    })
}

fn parse_site(f: &[String], what_idx: usize) -> Result<Site, String> {
    if f.len() < what_idx + 1 {
        return Err("truncated site record".to_string());
    }
    Ok(Site {
        line: parse_u32(&f[what_idx - 3])?,
        col: parse_u32(&f[what_idx - 2])?,
        snippet: f[what_idx - 1].clone(),
        what: f[what_idx].clone(),
    })
}

fn decode_body<'a, I: Iterator<Item = &'a str>>(lines: I) -> Result<FileAnalysis, String> {
    let mut findings: Vec<Finding> = Vec::new();
    let mut summary = FileSummary::default();
    let mut saw_path = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let f = split_record(line)?;
        match f[0].as_str() {
            "F" => {
                if f.len() != 8 {
                    return Err("bad finding record".to_string());
                }
                let rule = KNOWN_RULES
                    .iter()
                    .find(|r| **r == f[1])
                    .copied()
                    .ok_or_else(|| format!("unknown rule `{}`", f[1]))?;
                findings.push(Finding {
                    rule,
                    path: f[2].clone(),
                    line: parse_u32(&f[3])?,
                    col: parse_u32(&f[4])?,
                    message: f[5].clone(),
                    snippet: f[6].clone(),
                    fingerprint: f[7].clone(),
                });
            }
            "S" => {
                if f.len() != 2 {
                    return Err("bad summary record".to_string());
                }
                summary.path = f[1].clone();
                saw_path = true;
            }
            "D" => {
                summary.types = f[1..].to_vec();
            }
            "T" => {
                if f.len() < 2 || (f.len() - 2) % 3 != 0 {
                    return Err("bad struct record".to_string());
                }
                let mut fields = Vec::new();
                for tri in f[2..].chunks(3) {
                    fields.push((tri[0].clone(), tri[1].clone(), parse_bool(&tri[2])?));
                }
                summary.structs.push(StructInfo {
                    name: f[1].clone(),
                    fields,
                });
            }
            "N" => {
                if f.len() != 10 {
                    return Err("bad fn record".to_string());
                }
                summary.functions.push(FnInfo {
                    name: f[1].clone(),
                    self_type: parse_opt(&f[2], &f[3])?,
                    has_self: parse_bool(&f[4])?,
                    is_pub: parse_bool(&f[5])?,
                    is_test: parse_bool(&f[6])?,
                    line: parse_u32(&f[7])?,
                    ret_type: parse_opt(&f[8], &f[9])?,
                    calls: Vec::new(),
                    panics: Vec::new(),
                    locks: Vec::new(),
                    hash_iters: Vec::new(),
                    clock_reads: Vec::new(),
                });
            }
            "C" => {
                if f.len() < 7 {
                    return Err("bad call record".to_string());
                }
                let kind = match f[2].as_str() {
                    "m" => CallKind::Method,
                    "p" => CallKind::Path(f[3].clone()),
                    "f" => CallKind::Free,
                    other => return Err(format!("bad call kind `{other}`")),
                };
                let recv = match f[4].as_str() {
                    "s" => RecvHint::SelfType,
                    "d" => RecvHint::SelfField(f[5].clone()),
                    "k" => RecvHint::Known(f[5].clone()),
                    "u" => RecvHint::Unknown,
                    other => return Err(format!("bad recv hint `{other}`")),
                };
                let call = CallSite {
                    name: f[1].clone(),
                    kind,
                    recv,
                    line: parse_u32(&f[6])?,
                    held: f[7..].to_vec(),
                };
                summary
                    .functions
                    .last_mut()
                    .ok_or("call record before fn record")?
                    .calls
                    .push(call);
            }
            "X" => {
                let site = parse_site(&f, 4)?;
                summary
                    .functions
                    .last_mut()
                    .ok_or("panic record before fn record")?
                    .panics
                    .push(site);
            }
            "K" => {
                if f.len() < 6 {
                    return Err("bad lock record".to_string());
                }
                let acq = LockAcq {
                    chain: f[1].clone(),
                    site: parse_site(&f, 5)?,
                    held: f[6..].to_vec(),
                };
                summary
                    .functions
                    .last_mut()
                    .ok_or("lock record before fn record")?
                    .locks
                    .push(acq);
            }
            "I" => {
                let site = parse_site(&f, 4)?;
                summary
                    .functions
                    .last_mut()
                    .ok_or("iteration record before fn record")?
                    .hash_iters
                    .push(site);
            }
            "W" => {
                let site = parse_site(&f, 4)?;
                summary
                    .functions
                    .last_mut()
                    .ok_or("clock record before fn record")?
                    .clock_reads
                    .push(site);
            }
            other => return Err(format!("unknown record tag `{other}`")),
        }
    }
    if !saw_path {
        return Err("missing summary record".to_string());
    }
    Ok(FileAnalysis { findings, summary })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
use std::collections::HashMap;
use std::sync::RwLock;

pub struct S { table: RwLock<HashMap<String, u32>> }

impl S {
    pub fn get_all(&self) -> Vec<u32> {
        let g = self.table.read().unwrap();
        let mut out: Vec<u32> = g.values().copied().collect();
        helper(&out);
        out
    }
}

fn helper(v: &[u32]) -> u32 { v[0] }
"#;

    #[test]
    fn roundtrip_is_lossless() {
        let analysis = crate::analyze_source("crates/core/src/x.rs", SRC);
        let dir = std::env::temp_dir().join("alicoco-lint-cache-test-rt");
        let store = Store::open(&dir).unwrap();
        let key = content_key("crates/core/src/x.rs", SRC);
        store.save(&key, &analysis).unwrap();
        let loaded = store.load_entry(&key).unwrap().expect("entry present");
        assert_eq!(loaded.summary, analysis.summary);
        assert_eq!(loaded.findings.len(), analysis.findings.len());
        for (a, b) in loaded.findings.iter().zip(&analysis.findings) {
            assert_eq!(
                (
                    a.rule,
                    &a.path,
                    a.line,
                    a.col,
                    &a.message,
                    &a.snippet,
                    &a.fingerprint
                ),
                (
                    b.rule,
                    &b.path,
                    b.line,
                    b.col,
                    &b.message,
                    &b.snippet,
                    &b.fingerprint
                )
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_is_a_miss_but_corrupt_body_errors() {
        let analysis = crate::analyze_source("crates/core/src/x.rs", SRC);
        let dir = std::env::temp_dir().join("alicoco-lint-cache-test-ver");
        let store = Store::open(&dir).unwrap();
        let key = content_key("crates/core/src/x.rs", SRC);
        store.save(&key, &analysis).unwrap();
        let path = store.entry_path(&key);
        // Stale generation → miss.
        let body = std::fs::read_to_string(&path).unwrap();
        let stale = body.replacen(
            &format!("{HEADER_PREFIX}{FORMAT_VERSION}"),
            &format!("{HEADER_PREFIX}{}", FORMAT_VERSION + 1),
            1,
        );
        std::fs::write(&path, stale).unwrap();
        assert!(store.load_entry(&key).unwrap().is_none());
        // Valid header, garbage body → InvalidData.
        std::fs::write(
            &path,
            format!("{HEADER_PREFIX}{FORMAT_VERSION}\nZ\tgarbage\n"),
        )
        .unwrap();
        let err = store.load_entry(&key).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keys_differ_by_path_and_content() {
        let a = content_key("crates/a.rs", "fn main() {}");
        assert_eq!(a, content_key("crates/a.rs", "fn main() {}"));
        assert_ne!(a, content_key("crates/b.rs", "fn main() {}"));
        assert_ne!(a, content_key("crates/a.rs", "fn main() { }"));
    }

    #[test]
    fn escaping_roundtrips_awkward_strings() {
        for s in [
            "",
            "plain",
            "tab\there",
            "line\nbreak",
            "back\\slash",
            "\r\n\t\\",
        ] {
            assert_eq!(unesc(&esc(s)).unwrap(), s);
        }
        assert!(unesc("dangling\\").is_err());
    }
}
