//! Workspace-level call graph and the three inter-procedural rules.
//!
//! Built from the per-file [`FileSummary`] artifacts ([`crate::symbols`]),
//! never from re-lexed source — which is what makes the incremental cache
//! ([`crate::cache`]) sound: a warm run deserializes summaries for
//! unchanged files and this phase is bit-for-bit the same.
//!
//! The rules:
//!
//! - **AL007 panic-reachability** — public serving APIs (`pub fn` in
//!   `crates/apps/src`, `crates/core/src`, non-test) must not transitively
//!   reach a panic site (`unwrap`/`expect`/panicking macros/bare indexing)
//!   anywhere in the workspace. Sites *inside* the serving crates are
//!   AL001's jurisdiction (already fixed or explicitly vetted there);
//!   AL007 reports the ones hiding two crates away, with the full call
//!   chain so the fix site is obvious.
//! - **AL008 lock-order deadlock detection** — a global lock-acquisition
//!   graph over every `RwLock`/`Mutex` struct field: an edge `A → B` means
//!   some code path acquires `B` while holding `A` (directly, or through a
//!   call made with `A` held). Any cycle is a potential deadlock; the
//!   finding prints the conflicting chains.
//! - **AL009 nondeterminism escape** — AL005 generalized workspace-wide:
//!   un-canonicalized hash-collection iteration in any function reachable
//!   from a serialization routine or a public serving API is flagged (hash
//!   order would leak into artifacts or user-visible output), plus clock
//!   reads (`Instant::now`/`SystemTime::now`) outside `crates/obs` and the
//!   benchmarking crates.
//!
//! Name resolution is heuristic (`DESIGN.md` §10 documents the rules and
//! their blind spots); where the receiver type cannot be inferred the
//! resolver falls back to name matching, skipping method names that are
//! ambiguous across many types or too std-like to be informative.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::symbols::{CallKind, FileSummary, FnInfo, RecvHint};

/// A finding produced by a workspace-level rule, before fingerprinting.
#[derive(Clone, Debug)]
pub struct GlobalFinding {
    /// Rule id (`AL007`..`AL009`).
    pub rule: &'static str,
    /// Workspace-relative path of the *fix site*.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description, including the call chain.
    pub message: String,
    /// Trimmed source line at the site (carried by the summary).
    pub snippet: String,
}

/// One acquired-while-held edge in the global lock graph: some code path
/// acquires the `to` lock while holding `from`, at the recorded site.
#[derive(Clone, Debug)]
struct Edge {
    path: String,
    line: u32,
    col: u32,
    snippet: String,
    /// Human description of where the edge comes from, for cycle messages.
    via: String,
}

/// Render a cycle `trail` (distinct lock ids, in order) into one AL008
/// finding anchored at the first edge's acquisition site.
fn report_lock_cycle(
    trail: &[String],
    edges: &BTreeMap<(String, String), Edge>,
    out: &mut Vec<GlobalFinding>,
) {
    let mut chain_edges: Vec<(&String, &String, &Edge)> = Vec::new();
    for i in 0..trail.len() {
        let a = &trail[i];
        let b = &trail[(i + 1) % trail.len()];
        match edges.get(&(a.clone(), b.clone())) {
            Some(e) => chain_edges.push((a, b, e)),
            None => return, // stale trail; every hop must exist
        }
    }
    let Some((_, _, first)) = chain_edges.first() else {
        return;
    };
    let cycle = {
        let mut c: Vec<&str> = trail.iter().map(String::as_str).collect();
        c.push(&trail[0]);
        c.join(" -> ")
    };
    let hops = chain_edges
        .iter()
        .map(|(a, b, e)| format!("`{a}` -> `{b}` in {}", e.via))
        .collect::<Vec<_>>()
        .join("; ");
    out.push(GlobalFinding {
        rule: "AL008",
        path: first.path.clone(),
        line: first.line,
        col: first.col,
        message: format!(
            "lock-order cycle {cycle}: {hops}; acquire these locks in one global order"
        ),
        snippet: first.snippet.clone(),
    });
}

/// Serving crates whose public functions are AL007 entry points and whose
/// direct panic sites are AL001's jurisdiction.
const SERVING_SCOPE: &[&str] = &[
    "crates/ann/src/",
    "crates/apps/src/",
    "crates/core/src/",
    "crates/serve/src/",
];

/// Serialization files — AL005's jurisdiction for direct sites, and AL009
/// sink roots for transitive ones.
const SERIALIZATION_SCOPE: &[&str] = &[
    "core/src/snapshot/tsv.rs",
    "core/src/snapshot/binary.rs",
    "core/src/snapshot/records.rs",
    "core/src/store.rs",
    "nn/src/persist.rs",
];

/// Crates allowed to read the clock: the observability layer owns wall
/// time, and the benchmarking harnesses exist to measure it.
const CLOCK_EXEMPT: &[&str] = &["obs", "bench", "criterion"];

/// Function-name prefixes treated as serialization sinks wherever they
/// live (their output is an artifact or user-visible document).
const SINK_NAME_PREFIXES: &[&str] = &["save", "export", "serialize", "to_json", "write_"];

/// Method names never resolved by bare-name fallback: they are defined on
/// many workspace types and/or shadow std methods, so a name-only match
/// would wire the graph with fictitious edges.
const FALLBACK_BLOCKLIST: &[&str] = &[
    "new",
    "default",
    "len",
    "is_empty",
    "clone",
    "iter",
    "into_iter",
    "next",
    "get",
    "push",
    "insert",
    "contains",
    "fmt",
    "from",
    "into",
    "eq",
    "cmp",
    "hash",
    "drop",
    "clear",
    "clamp",
    "reset",
    "item",
    "name",
    "index",
    "id",
    "min",
    "max",
];

/// Bare-name fallback gives up when a method name is defined on more than
/// this many distinct types — the candidates are then noise, not signal.
const FALLBACK_AMBIGUITY_LIMIT: usize = 3;

/// Chains in findings are truncated past this many hops.
const CHAIN_DISPLAY_LIMIT: usize = 10;

/// Crate name segment of a workspace-relative path (`crates/<name>/...`).
fn crate_of(p: &str) -> &str {
    p.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

/// Fields of one struct: `(name, type head, is lock-typed)` per field.
type FieldTable<'a> = Vec<(&'a str, &'a str, bool)>;

/// The resolved workspace: symbol tables plus the call adjacency.
pub struct CallGraph<'a> {
    files: &'a [FileSummary],
    /// `(file index, fn index)` per global fn id.
    fns: Vec<(usize, usize)>,
    /// Adjacency: per fn id, `(callee fn id, call-site line)`.
    edges: Vec<Vec<(usize, u32)>>,
    /// `(crate, struct name)` → field table. BTreeMap so cross-crate
    /// fallback scans in deterministic order.
    structs: BTreeMap<(&'a str, &'a str), FieldTable<'a>>,
    /// Crate → every type name it declares (struct/enum/trait/union).
    types: HashMap<&'a str, HashSet<&'a str>>,
}

impl<'a> CallGraph<'a> {
    /// Build the graph from per-file summaries. `files` must be sorted by
    /// path (the caller's walk order) for deterministic ids.
    pub fn build(files: &'a [FileSummary]) -> Self {
        let mut fns = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            if !f.is_src() {
                continue;
            }
            for (gi, _) in f.functions.iter().enumerate() {
                fns.push((fi, gi));
            }
        }
        let mut structs: BTreeMap<(&str, &str), FieldTable<'_>> = BTreeMap::new();
        let mut types: HashMap<&str, HashSet<&str>> = HashMap::new();
        for f in files {
            let krate = crate_of(&f.path);
            for s in &f.structs {
                structs.entry((krate, s.name.as_str())).or_default().extend(
                    s.fields
                        .iter()
                        .map(|(n, t, l)| (n.as_str(), t.as_str(), *l)),
                );
            }
            types
                .entry(krate)
                .or_default()
                .extend(f.types.iter().map(String::as_str));
        }
        // Lookup tables. Values stay in `fns` order → deterministic.
        let mut methods: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut assoc: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        let mut free: HashMap<&str, Vec<usize>> = HashMap::new();
        for (id, &(fi, gi)) in fns.iter().enumerate() {
            let f = &files[fi].functions[gi];
            match &f.self_type {
                Some(ty) => {
                    assoc
                        .entry((ty.as_str(), f.name.as_str()))
                        .or_default()
                        .push(id);
                    if f.has_self {
                        methods.entry(f.name.as_str()).or_default().push(id);
                    }
                }
                None => free.entry(f.name.as_str()).or_default().push(id),
            }
        }
        let mut graph = CallGraph {
            files,
            fns,
            edges: Vec::new(),
            structs,
            types,
        };
        let mut edges = Vec::with_capacity(graph.fns.len());
        for id in 0..graph.fns.len() {
            let caller = graph.fn_info(id);
            let caller_file = graph.files[graph.fns[id].0].path.clone();
            let mut out: Vec<(usize, u32)> = Vec::new();
            for call in &caller.calls {
                for callee in resolve(call, caller, &caller_file, &graph, &methods, &assoc, &free) {
                    if callee != id && !out.iter().any(|(c, _)| *c == callee) {
                        out.push((callee, call.line));
                    }
                }
            }
            edges.push(out);
        }
        graph.edges = edges;
        graph
    }

    fn fn_info(&self, id: usize) -> &'a FnInfo {
        let (fi, gi) = self.fns[id];
        &self.files[fi].functions[gi]
    }

    fn fn_path(&self, id: usize) -> &'a str {
        &self.files[self.fns[id].0].path
    }

    /// `Type::name` / `name` label for chain rendering.
    fn fn_label(&self, id: usize) -> String {
        let f = self.fn_info(id);
        match &f.self_type {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Whether `krate` declares a type named `ty`.
    fn crate_defines(&self, krate: &str, ty: &str) -> bool {
        self.types.get(krate).is_some_and(|set| set.contains(ty))
    }

    /// Head type of struct `ty`'s field `field`, with lock flag. Prefers
    /// the definition in `krate`; falls back to the first other crate
    /// declaring a struct `ty` with that field (BTreeMap order, so the
    /// fallback is deterministic).
    fn field_of(&self, krate: &str, ty: &str, field: &str) -> Option<(&'a str, bool)> {
        let find = |fs: &Vec<(&'a str, &'a str, bool)>| {
            fs.iter()
                .find(|(n, _, _)| *n == field)
                .map(|(_, t, l)| (*t, *l))
        };
        if let Some(hit) = self.structs.get(&(krate, ty)).and_then(find) {
            return Some(hit);
        }
        self.structs
            .iter()
            .filter(|((k, n), _)| *n == ty && *k != krate)
            .find_map(|(_, fs)| find(fs))
    }

    /// Canonical lock id for a normalized chain recorded in `fn_id`'s
    /// body: `Type.field`, or `None` when it cannot be pinned to a known
    /// `RwLock`/`Mutex` struct field.
    fn lock_id(&self, fn_id: usize, chain: &str) -> Option<String> {
        let f = self.fn_info(fn_id);
        let (base, rest) = chain.split_once('.')?;
        // Nested chains (`a.b.c`) are too deep for the heuristic.
        if rest.contains('.') {
            return None;
        }
        let ty: &str = if base == "<Self>" {
            f.self_type.as_deref()?
        } else {
            base.strip_prefix('<')?.strip_suffix('>')?
        };
        match self.field_of(crate_of(self.fn_path(fn_id)), ty, rest) {
            Some((_, true)) => Some(format!("{ty}.{rest}")),
            _ => None,
        }
    }

    /// Run the three workspace rules.
    pub fn run_rules(&self) -> Vec<GlobalFinding> {
        let mut out = Vec::new();
        self.al007_panic_reachability(&mut out);
        self.al008_lock_order(&mut out);
        self.al009_nondeterminism(&mut out);
        out
    }

    // ---------------------------------------------------------- AL007

    fn serving_entries(&self) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&id| {
                let f = self.fn_info(id);
                let path = self.fn_path(id);
                f.is_pub && !f.is_test && SERVING_SCOPE.iter().any(|s| path.contains(s))
            })
            .collect()
    }

    /// Multi-source BFS from `roots`; returns per-fn predecessor
    /// (`usize::MAX` for roots, absent for unreachable).
    fn bfs(&self, roots: &[usize]) -> HashMap<usize, usize> {
        let mut pred: HashMap<usize, usize> = HashMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if let std::collections::hash_map::Entry::Vacant(e) = pred.entry(r) {
                e.insert(usize::MAX);
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            for &(callee, _) in &self.edges[id] {
                if !pred.contains_key(&callee) && !self.fn_info(callee).is_test {
                    pred.insert(callee, id);
                    queue.push_back(callee);
                }
            }
        }
        pred
    }

    /// Root → ... → `id` labels using BFS predecessors.
    fn chain_to(&self, pred: &HashMap<usize, usize>, id: usize) -> String {
        let mut labels = Vec::new();
        let mut cur = id;
        loop {
            labels.push(self.fn_label(cur));
            match pred.get(&cur) {
                Some(&p) if p != usize::MAX => cur = p,
                _ => break,
            }
        }
        labels.reverse();
        if labels.len() > CHAIN_DISPLAY_LIMIT {
            let tail = labels.split_off(labels.len() - 2);
            labels.truncate(CHAIN_DISPLAY_LIMIT - 3);
            labels.push("...".to_string());
            labels.extend(tail);
        }
        labels.join(" -> ")
    }

    fn al007_panic_reachability(&self, out: &mut Vec<GlobalFinding>) {
        let entries = self.serving_entries();
        let pred = self.bfs(&entries);
        let mut seen: HashSet<(String, u32, u32)> = HashSet::new();
        for (&id, _) in pred.iter() {
            let f = self.fn_info(id);
            let path = self.fn_path(id);
            // Direct sites in serving crates are AL001's jurisdiction.
            if SERVING_SCOPE.iter().any(|s| path.contains(s)) {
                continue;
            }
            for p in &f.panics {
                if !seen.insert((path.to_string(), p.line, p.col)) {
                    continue;
                }
                let chain = self.chain_to(&pred, id);
                out.push(GlobalFinding {
                    rule: "AL007",
                    path: path.to_string(),
                    line: p.line,
                    col: p.col,
                    message: format!(
                        "{} is reachable from a public serving API: {} -> [{}]; return an error or restructure so serving traffic cannot hit it",
                        p.what, chain, p.what
                    ),
                    snippet: p.snippet.clone(),
                });
            }
        }
        // Deterministic order regardless of HashMap iteration.
        out.sort_by(|a, b| {
            (a.rule, &a.path, a.line, a.col, &a.message)
                .cmp(&(b.rule, &b.path, b.line, b.col, &b.message))
        });
    }

    // ---------------------------------------------------------- AL008

    /// All lock ids a function may acquire, directly or transitively.
    fn trans_locks(&self) -> Vec<Vec<String>> {
        // Direct sets.
        let n = self.fns.len();
        let mut direct: Vec<Vec<String>> = Vec::with_capacity(n);
        for id in 0..n {
            let mut locks: Vec<String> = self
                .fn_info(id)
                .locks
                .iter()
                .filter_map(|a| self.lock_id(id, &a.chain))
                .collect();
            locks.sort();
            locks.dedup();
            direct.push(locks);
        }
        // Fixpoint over the call graph (workspace is small; iterate).
        let mut trans = direct.clone();
        loop {
            let mut changed = false;
            for id in 0..n {
                let mut add: Vec<String> = Vec::new();
                for &(callee, _) in &self.edges[id] {
                    for l in &trans[callee] {
                        if !trans[id].contains(l) && !add.contains(l) {
                            add.push(l.clone());
                        }
                    }
                }
                if !add.is_empty() {
                    trans[id].extend(add);
                    trans[id].sort();
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        trans
    }

    fn al008_lock_order(&self, out: &mut Vec<GlobalFinding>) {
        let trans = self.trans_locks();
        let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
        let mut add_edge = |from: &str, to: &str, e: Edge| {
            if from != to {
                edges.entry((from.to_string(), to.to_string())).or_insert(e);
            }
        };
        for id in 0..self.fns.len() {
            let f = self.fn_info(id);
            if f.is_test {
                continue;
            }
            let path = self.fn_path(id);
            let label = self.fn_label(id);
            // Intra-procedural: acquisition with held locks.
            for acq in &f.locks {
                let Some(to) = self.lock_id(id, &acq.chain) else {
                    continue;
                };
                for h in &acq.held {
                    if let Some(from) = self.lock_id(id, h) {
                        add_edge(
                            &from,
                            &to,
                            Edge {
                                path: path.to_string(),
                                line: acq.site.line,
                                col: acq.site.col,
                                snippet: acq.site.snippet.clone(),
                                via: format!("{label} ({path}:{})", acq.site.line),
                            },
                        );
                    }
                }
            }
            // Inter-procedural: call with locks held → everything the
            // callee may acquire.
            for call in &f.calls {
                if call.held.is_empty() {
                    continue;
                }
                let held: Vec<String> = call
                    .held
                    .iter()
                    .filter_map(|h| self.lock_id(id, h))
                    .collect();
                if held.is_empty() {
                    continue;
                }
                for &(callee, line) in self.edges[id].iter().filter(|(_, l)| *l == call.line) {
                    for to in &trans[callee] {
                        for from in &held {
                            add_edge(
                                from,
                                to,
                                Edge {
                                    path: path.to_string(),
                                    line,
                                    col: 1,
                                    snippet: String::new(),
                                    via: format!(
                                        "{label} calls {} with `{from}` held ({path}:{line})",
                                        self.fn_label(callee)
                                    ),
                                },
                            );
                        }
                    }
                }
            }
        }
        // Cycle detection over the lock graph (deterministic: BTreeMap
        // keys are sorted, DFS explores successors in that order).
        let nodes: Vec<String> = {
            let mut set: Vec<String> = edges
                .keys()
                .flat_map(|(a, b)| [a.clone(), b.clone()])
                .collect();
            set.sort();
            set.dedup();
            set
        };
        let succ = |n: &str| -> Vec<String> {
            edges
                .keys()
                .filter(|(a, _)| a == n)
                .map(|(_, b)| b.clone())
                .collect()
        };
        let mut reported: HashSet<Vec<String>> = HashSet::new();
        for start in &nodes {
            // Bounded DFS looking for a cycle back to `start`; plenty at
            // this graph size.
            let mut stack = vec![(start.clone(), vec![start.clone()])];
            let mut guard = 0usize;
            while let Some((cur, trail)) = stack.pop() {
                guard += 1;
                if guard > 10_000 {
                    break;
                }
                for nxt in succ(&cur) {
                    if &nxt == start && trail.len() >= 2 {
                        let mut canon = trail.clone();
                        canon.sort();
                        if reported.insert(canon) {
                            report_lock_cycle(&trail, &edges, out);
                        }
                    } else if !trail.contains(&nxt) && trail.len() < 6 {
                        let mut t = trail.clone();
                        t.push(nxt.clone());
                        stack.push((nxt, t));
                    }
                }
            }
        }
        // Self-deadlock: an edge A → A means a path re-acquires a lock it
        // already holds (covered intra-file by AL004, so only the
        // inter-procedural shape lands here — add_edge drops `from == to`,
        // so detect it directly).
        for id in 0..self.fns.len() {
            let f = self.fn_info(id);
            if f.is_test {
                continue;
            }
            for call in &f.calls {
                let held: Vec<String> = call
                    .held
                    .iter()
                    .filter_map(|h| self.lock_id(id, h))
                    .collect();
                if held.is_empty() {
                    continue;
                }
                for &(callee, line) in self.edges[id].iter().filter(|(_, l)| *l == call.line) {
                    for to in &trans[callee] {
                        if held.contains(to) {
                            let path = self.fn_path(id);
                            out.push(GlobalFinding {
                                rule: "AL008",
                                path: path.to_string(),
                                line,
                                col: 1,
                                message: format!(
                                    "`{}` calls `{}` while holding `{to}`, and the callee (transitively) acquires `{to}` again — self-deadlock on a non-reentrant lock",
                                    self.fn_label(id),
                                    self.fn_label(callee),
                                ),
                                snippet: String::new(),
                            });
                        }
                    }
                }
            }
        }
    }

    // ---------------------------------------------------------- AL009

    fn sink_roots(&self) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&id| {
                let f = self.fn_info(id);
                if f.is_test {
                    return false;
                }
                let path = self.fn_path(id);
                let in_serialization = SERIALIZATION_SCOPE.iter().any(|s| path.ends_with(s));
                let sink_name = SINK_NAME_PREFIXES.iter().any(|p| f.name.starts_with(p));
                let serving_pub = f.is_pub && SERVING_SCOPE.iter().any(|s| path.contains(s));
                in_serialization || sink_name || serving_pub
            })
            .collect()
    }

    fn al009_nondeterminism(&self, out: &mut Vec<GlobalFinding>) {
        let sinks = self.sink_roots();
        let pred = self.bfs(&sinks);
        let mut hash_findings = Vec::new();
        for (&id, _) in pred.iter() {
            let f = self.fn_info(id);
            let path = self.fn_path(id);
            // Direct sites in serialization files are AL005's.
            if SERIALIZATION_SCOPE.iter().any(|s| path.ends_with(s)) {
                continue;
            }
            for site in &f.hash_iters {
                let chain = self.chain_to(&pred, id);
                hash_findings.push(GlobalFinding {
                    rule: "AL009",
                    path: path.to_string(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "hash-collection iteration without a canonical sort flows into serialized or user-visible output: {} -> [iteration]; sort (or use a BTree map) before the order escapes",
                        chain
                    ),
                    snippet: site.snippet.clone(),
                });
            }
        }
        hash_findings.sort_by(|a, b| {
            (&a.path, a.line, a.col, &a.message).cmp(&(&b.path, b.line, b.col, &b.message))
        });
        out.extend(hash_findings);
        // Clock reads outside the observability/benchmark crates.
        for id in 0..self.fns.len() {
            let f = self.fn_info(id);
            if f.is_test {
                continue;
            }
            let (fi, _) = self.fns[id];
            let file = &self.files[fi];
            if CLOCK_EXEMPT.contains(&file.crate_name()) {
                continue;
            }
            for site in &f.clock_reads {
                out.push(GlobalFinding {
                    rule: "AL009",
                    path: file.path.clone(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "clock read in `{}` outside `crates/obs`; route timing through `obs::Stopwatch`/`SpanTimer` so wall time has one owner and stays out of deterministic paths",
                        self.fn_label(id)
                    ),
                    snippet: site.snippet.clone(),
                });
            }
        }
    }
}

/// Resolve one call site to candidate workspace functions.
fn resolve(
    call: &crate::symbols::CallSite,
    caller: &FnInfo,
    caller_file: &str,
    graph: &CallGraph,
    methods: &HashMap<&str, Vec<usize>>,
    assoc: &HashMap<(&str, &str), Vec<usize>>,
    free: &HashMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let name = call.name.as_str();
    let caller_crate = crate_of(caller_file);
    let prefer_same_crate = |cands: Vec<usize>| -> Vec<usize> {
        let same: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| crate_of(graph.fn_path(id)) == caller_crate)
            .collect();
        if same.is_empty() {
            cands
        } else {
            same
        }
    };
    // Distinct crates may define same-named types (`Store` is a trait in
    // `core` and a struct in `analysis`). When the caller's crate declares
    // a type with the receiver's name, methods on same-named types in
    // *other* crates are a different type entirely — matching them would
    // wire fictitious cross-crate edges, so resolution yields nothing
    // rather than lying. Otherwise the type is imported and the first
    // crates defining it are plausible homes.
    let by_type = |ty: &str| -> Vec<usize> {
        let cands = assoc.get(&(ty, name)).cloned().unwrap_or_default();
        if graph.crate_defines(caller_crate, ty) {
            cands
                .into_iter()
                .filter(|&id| crate_of(graph.fn_path(id)) == caller_crate)
                .collect()
        } else {
            prefer_same_crate(cands)
        }
    };
    match &call.kind {
        CallKind::Method => match &call.recv {
            RecvHint::SelfType => caller.self_type.as_deref().map(by_type).unwrap_or_default(),
            RecvHint::SelfField(field) => {
                let ty = caller
                    .self_type
                    .as_deref()
                    .and_then(|st| graph.field_of(caller_crate, st, field))
                    .map(|(t, _)| t);
                match ty {
                    Some(t) => by_type(t),
                    None => fallback(name, methods),
                }
            }
            RecvHint::Known(ty) => by_type(ty),
            RecvHint::Unknown => fallback(name, methods),
        },
        CallKind::Path(qual) => {
            if qual.chars().next().is_some_and(|c| c.is_uppercase()) {
                by_type(qual)
            } else {
                // Module-qualified free call: prefer functions defined in a
                // file whose stem matches the module name.
                let cands = free.get(name).cloned().unwrap_or_default();
                let stem: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&id| {
                        graph.fn_path(id).ends_with(&format!("/{qual}.rs"))
                            || graph.fn_path(id).ends_with(&format!("/{qual}/mod.rs"))
                    })
                    .collect();
                if stem.is_empty() {
                    cands
                } else {
                    stem
                }
            }
        }
        CallKind::Free => {
            let cands = free.get(name).cloned().unwrap_or_default();
            // Prefer same-file, then same-crate definitions.
            let same_file: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| graph.fn_path(id) == caller_file)
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            prefer_same_crate(cands)
        }
    }
}

/// Name-only method fallback, guarded against std-alike and ambiguous
/// names.
fn fallback(name: &str, methods: &HashMap<&str, Vec<usize>>) -> Vec<usize> {
    if FALLBACK_BLOCKLIST.contains(&name) {
        return Vec::new();
    }
    let cands = methods.get(name).cloned().unwrap_or_default();
    if cands.len() > FALLBACK_AMBIGUITY_LIMIT {
        return Vec::new();
    }
    cands
}

/// Turn global findings into finalized [`crate::Finding`]s (fingerprint +
/// ordinal assignment, same identity scheme as the per-file rules).
pub fn finalize(findings: Vec<GlobalFinding>) -> Vec<crate::Finding> {
    let mut sorted = findings;
    sorted.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule, &a.message)
            .cmp(&(&b.path, b.line, b.col, b.rule, &b.message))
    });
    let mut ordinals: HashMap<(&'static str, String, String), u32> = HashMap::new();
    sorted
        .into_iter()
        .map(|g| {
            let ord = ordinals
                .entry((g.rule, g.path.clone(), g.snippet.clone()))
                .and_modify(|o| *o += 1)
                .or_insert(0);
            crate::Finding {
                fingerprint: crate::fingerprint(g.rule, &g.path, &g.snippet, *ord),
                rule: g.rule,
                path: g.path,
                line: g.line,
                col: g.col,
                message: g.message,
                snippet: g.snippet,
            }
        })
        .collect()
}

/// Run the workspace rules over summaries (sorted by path) and return
/// finalized findings.
pub fn run(summaries: &[FileSummary]) -> Vec<crate::Finding> {
    let graph = CallGraph::build(summaries);
    finalize(graph.run_rules())
}
