//! The six lint rules.
//!
//! Each rule is a pure function from a [`FileCtx`] to raw findings. The
//! rules encode invariants the workspace documents in `DESIGN.md` but the
//! compiler cannot check:
//!
//! - **AL001** — serving code (`crates/apps`, `crates/core`) must not
//!   panic: no `unwrap`/`expect`, no panicking macros, no bare slice
//!   indexing (the typed-id arena convention `v[id.index()]` is exempt —
//!   those indices are valid by construction).
//! - **AL002** — ordering floats with `partial_cmp` is non-total and
//!   non-deterministic under NaN; all ranking goes through the comparators
//!   in the shared `rank` module.
//! - **AL003** — epoch loops belong to the training engine
//!   (`nn::train`); modules must not grow private training loops again.
//! - **AL004** — `RwLock` guard discipline: no two acquisitions in one
//!   statement, no second acquisition (read→write upgrade) while a guard
//!   on the same receiver is live, no thread spawn/scope with a guard
//!   held, and no per-op `Param::value()`/`value_mut()` guard reads in
//!   the training hot path (`nn/src/train.rs`, `nn/src/graph.rs`) — hot
//!   code reads through the graph's version-checked snapshot cache.
//! - **AL005** — snapshot/persist serialization must not iterate hash
//!   collections without a canonical sort: hash order differs between
//!   runs and would break byte-identical artifacts.
//! - **AL006** — every `unsafe` block carries a `// SAFETY:` comment.

use crate::lexer::TokenKind;
use crate::parse::{block_tree, receiver_chain, statements, Block, FileCtx, Piece, KEYWORDS};

/// A rule hit before fingerprinting (see [`crate::Finding`] for the final
/// form).
#[derive(Clone, Debug)]
pub struct RawFinding {
    /// Rule id, `AL001`..`AL006`.
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl RawFinding {
    fn at(rule: &'static str, ctx: &FileCtx, si: usize, message: String) -> Self {
        let t = ctx.tok(si);
        RawFinding {
            rule,
            line: t.line,
            col: t.col,
            message,
        }
    }
}

/// Run every rule over one file.
pub fn run_all(ctx: &FileCtx) -> Vec<RawFinding> {
    let mut out = Vec::new();
    al001_no_panics(ctx, &mut out);
    al002_total_order_ranking(ctx, &mut out);
    al003_engine_owns_epochs(ctx, &mut out);
    al004_lock_discipline(ctx, &mut out);
    al005_canonical_iteration(ctx, &mut out);
    al006_safety_comments(ctx, &mut out);
    out
}

fn path_in(ctx: &FileCtx, fragments: &[&str]) -> bool {
    fragments.iter().any(|f| ctx.path.contains(f))
}

/// Is the sig token at `si` a method-call name: `.name(`?
pub(crate) fn is_method_call(ctx: &FileCtx, si: usize, name: &str) -> bool {
    ctx.tok(si).is_ident(name)
        && si > 0
        && ctx.tok(si - 1).is_punct('.')
        && si + 1 < ctx.sig.len()
        && ctx.tok(si + 1).is_punct('(')
}

/// Is the sig token at `si` a macro invocation name: `name!`?
pub(crate) fn is_macro_call(ctx: &FileCtx, si: usize, name: &str) -> bool {
    ctx.tok(si).is_ident(name)
        && si + 1 < ctx.sig.len()
        && ctx.tok(si + 1).is_punct('!')
        && (si == 0 || !ctx.tok(si - 1).is_punct('.'))
}

// ---------------------------------------------------------------- AL001

/// Serving crates whose non-test code must be panic-free.
const AL001_SCOPE: &[&str] = &[
    "crates/ann/src/",
    "crates/apps/src/",
    "crates/core/src/",
    "crates/serve/src/",
];

fn al001_no_panics(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    if !path_in(ctx, AL001_SCOPE) {
        return;
    }
    for si in 0..ctx.sig.len() {
        if ctx.is_test(si) {
            continue;
        }
        for m in ["unwrap", "expect"] {
            if is_method_call(ctx, si, m) {
                out.push(RawFinding::at(
                    "AL001",
                    ctx,
                    si,
                    format!("`.{m}()` in serving code can panic; propagate the error or handle the `None`/`Err` case"),
                ));
            }
        }
        for m in ["panic", "unreachable", "todo", "unimplemented"] {
            if is_macro_call(ctx, si, m) {
                out.push(RawFinding::at(
                    "AL001",
                    ctx,
                    si,
                    format!("`{m}!` in serving code; return an error or restructure so the case is impossible"),
                ));
            }
        }
        if let Some(finding) = bare_index_at(ctx, si) {
            out.push(finding);
        }
    }
}

/// Whether the sig token at `si` opens a bare (panic-able) index
/// expression — the same test AL001 applies, exposed for the workspace
/// summaries ([`crate::symbols`]).
pub(crate) fn bare_index_site(ctx: &FileCtx, si: usize) -> bool {
    bare_index_at(ctx, si).is_some()
}

/// Flag `expr[index]` when `index` is not the typed-id convention
/// `id.index()` and not the panic-free full range `[..]`.
fn bare_index_at(ctx: &FileCtx, si: usize) -> Option<RawFinding> {
    if !ctx.tok(si).is_punct('[') || si == 0 {
        return None;
    }
    let prev = ctx.tok(si - 1);
    let indexes_a_value = match prev.kind {
        TokenKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
        TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
        _ => false,
    };
    if !indexes_a_value {
        return None;
    }
    // Find the matching `]`.
    let mut depth = 1usize;
    let mut j = si + 1;
    while j < ctx.sig.len() && depth > 0 {
        if ctx.tok(j).is_punct('[') {
            depth += 1;
        } else if ctx.tok(j).is_punct(']') {
            depth -= 1;
        }
        j += 1;
    }
    let close = j - 1;
    let inner: Vec<usize> = (si + 1..close).collect();
    // `v[..]` — RangeFull cannot go out of bounds.
    if inner.len() == 2 && inner.iter().all(|&k| ctx.tok(k).is_punct('.')) {
        return None;
    }
    // `v[id.index()]` — typed ids are in range by construction.
    if inner.len() >= 4 {
        let tail = &inner[inner.len() - 4..];
        if ctx.tok(tail[0]).is_punct('.')
            && ctx.tok(tail[1]).is_ident("index")
            && ctx.tok(tail[2]).is_punct('(')
            && ctx.tok(tail[3]).is_punct(')')
        {
            return None;
        }
    }
    Some(RawFinding::at(
        "AL001",
        ctx,
        si,
        "bare slice indexing in serving code can panic; use `.get()` or a typed-id `.index()`"
            .into(),
    ))
}

// ---------------------------------------------------------------- AL002

/// The one module allowed to spell `partial_cmp`: it wraps the total order
/// everything else uses.
const AL002_EXEMPT: &str = "nn/src/rank.rs";

fn al002_total_order_ranking(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    if ctx.path.ends_with(AL002_EXEMPT) {
        return;
    }
    for si in 0..ctx.sig.len() {
        if is_method_call(ctx, si, "partial_cmp") {
            out.push(RawFinding::at(
                "AL002",
                ctx,
                si,
                "`partial_cmp` is not a total order (NaN breaks sorts non-deterministically); use `rank::by_score_then_id`, `rank::score_desc` or `rank::TopK`"
                    .into(),
            ));
        }
    }
}

// ---------------------------------------------------------------- AL003

/// The training engine — the only module allowed to own an epoch loop.
const AL003_EXEMPT: &str = "nn/src/train.rs";

fn al003_engine_owns_epochs(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    if ctx.path.ends_with(AL003_EXEMPT) {
        return;
    }
    for si in 0..ctx.sig.len() {
        if !ctx.tok(si).is_ident("for") || ctx.is_test(si) {
            continue;
        }
        // Scan the loop header (pattern + iterator) up to its body brace.
        let mut j = si + 1;
        let mut hit = false;
        while j < ctx.sig.len() && j - si < 40 {
            let t = ctx.tok(j);
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if t.kind == TokenKind::Ident && t.text.to_lowercase().contains("epoch") {
                hit = true;
            }
            j += 1;
        }
        if hit {
            out.push(RawFinding::at(
                "AL003",
                ctx,
                si,
                "epoch loop outside the training engine; drive it through `Trainer::train` or `Trainer::run_raw` so the schedule and early stopping stay shared"
                    .into(),
            ));
        }
    }
}

// ---------------------------------------------------------------- AL004

/// A live `RwLock` guard binding.
struct Guard {
    receiver: String,
    name: String,
    line: u32,
}

fn al004_lock_discipline(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    let tree = block_tree(ctx);
    let mut live: Vec<Guard> = Vec::new();
    al004_block(ctx, &tree, &mut live, out);
    al004_hot_path_snapshot_reads(ctx, out);
}

/// Training hot-path files where per-op parameter guard reads are banned:
/// forward/backward passes run per example per epoch, so every
/// `Param::value()` there is a lock acquisition in the innermost loop.
const AL004_HOT_PATHS: &[&str] = &["nn/src/train.rs", "nn/src/graph.rs"];

/// The engine reads parameters through the graph's version-checked snapshot
/// cache (`Graph::snapshot_of`): one atomic version load per read, a lock
/// only when the optimizer has actually stepped. A raw `.value()` /
/// `.value_mut()` in the hot path reintroduces the per-op `RwLock` traffic
/// the snapshot-pointer scheme removed, so flag it like any other lock
/// misuse. (`Graph::value(id)` takes an argument and is not matched.)
fn al004_hot_path_snapshot_reads(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    if !AL004_HOT_PATHS.iter().any(|p| ctx.path.ends_with(p)) {
        return;
    }
    for si in 0..ctx.sig.len() {
        if ctx.is_test(si) {
            continue;
        }
        for m in ["value", "value_mut"] {
            let is_guard_read = is_method_call(ctx, si, m)
                && si + 2 < ctx.sig.len()
                && ctx.tok(si + 2).is_punct(')');
            if is_guard_read {
                out.push(RawFinding::at(
                    "AL004",
                    ctx,
                    si,
                    format!(
                        "`.{m}()` takes a param lock in the training hot path; read through the version-checked snapshot cache (`Graph::snapshot_of`) instead"
                    ),
                ));
            }
        }
    }
}

/// Sig indices in `stmt` of empty-argument `.read()` / `.write()` calls.
fn lock_calls(ctx: &FileCtx, stmt: &[Piece]) -> Vec<usize> {
    let mut calls = Vec::new();
    for p in stmt {
        let Piece::Tok(si) = *p else { continue };
        let is_lock = (is_method_call(ctx, si, "read") || is_method_call(ctx, si, "write"))
            && si + 2 < ctx.sig.len()
            && ctx.tok(si + 2).is_punct(')');
        if is_lock {
            calls.push(si);
        }
    }
    calls
}

fn al004_block(ctx: &FileCtx, block: &Block, live: &mut Vec<Guard>, out: &mut Vec<RawFinding>) {
    let base = live.len();
    for stmt in statements(ctx, block) {
        let locks = lock_calls(ctx, &stmt);
        // (a) Two acquisitions in one statement: guard order is implicit in
        // expression evaluation order and deadlocks under contention.
        if locks.len() >= 2 {
            out.push(RawFinding::at(
                "AL004",
                ctx,
                locks[1],
                "multiple lock acquisitions in one statement; bind each guard separately in a fixed order"
                    .into(),
            ));
        }
        // (b) Acquisition while a guard on the same receiver is live — the
        // read-then-write upgrade pattern self-deadlocks.
        for &si in &locks {
            let recv = receiver_chain(ctx, si - 1);
            if recv.is_empty() {
                continue;
            }
            if let Some(g) = live.iter().find(|g| g.receiver == recv) {
                out.push(RawFinding::at(
                    "AL004",
                    ctx,
                    si,
                    format!(
                        "lock on `{recv}` acquired while guard `{}` (line {}) is still live; drop the first guard before re-locking",
                        g.name, g.line
                    ),
                ));
            }
        }
        // (c) Spawning threads with a guard held serializes (or deadlocks)
        // the workers the spawn was supposed to parallelize.
        if !live.is_empty() {
            for p in &stmt {
                let Piece::Tok(si) = *p else { continue };
                let t = ctx.tok(si);
                let spawns = (t.is_ident("spawn") || t.is_ident("scope"))
                    && si + 1 < ctx.sig.len()
                    && ctx.tok(si + 1).is_punct('(');
                if spawns {
                    let g = &live[live.len() - 1];
                    out.push(RawFinding::at(
                        "AL004",
                        ctx,
                        si,
                        format!(
                            "thread `{}` started while lock guard `{}` (line {}) is live; scope the guard so workers are not blocked",
                            t.text, g.name, g.line
                        ),
                    ));
                    break;
                }
            }
        }
        // `drop(g)` kills the binding.
        let toks: Vec<usize> = stmt
            .iter()
            .filter_map(|p| match p {
                Piece::Tok(si) => Some(*si),
                Piece::Child(_) => None,
            })
            .collect();
        for w in toks.windows(4) {
            if ctx.tok(w[0]).is_ident("drop")
                && ctx.tok(w[1]).is_punct('(')
                && ctx.tok(w[3]).is_punct(')')
            {
                let victim = &ctx.tok(w[2]).text;
                live.retain(|g| &g.name != victim);
            }
        }
        // Recurse into nested scopes with the current liveness.
        for p in &stmt {
            if let Piece::Child(c) = p {
                al004_block(ctx, &block.children[*c], live, out);
            }
        }
        // `let g = x.read();` starts a live guard. `let v = x.read().len();`
        // does not — the guard is a temporary dropped at the semicolon — so
        // the binding only counts when the lock call (give or take an
        // `unwrap`/`expect` of the poison result) ends the statement.
        let starts_let = toks.first().is_some_and(|&si| ctx.tok(si).is_ident("let"));
        if starts_let && !locks.is_empty() && guard_outlives_statement(ctx, locks[0]) {
            let mut name = None;
            for &si in toks.iter().skip(1) {
                let t = ctx.tok(si);
                if t.kind == TokenKind::Ident && t.text != "mut" {
                    name = Some(t.text.clone());
                    break;
                }
            }
            // `let _ = lock()` drops the guard immediately — not live.
            if let Some(name) = name.filter(|n| n != "_") {
                live.push(Guard {
                    receiver: receiver_chain(ctx, locks[0] - 1),
                    name,
                    line: ctx.tok(toks[0]).line,
                });
            }
        }
    }
    live.truncate(base);
}

/// After `lock_si`'s `.read()`/`.write()` call, does the statement end with
/// the guard still in hand? Trailing `.unwrap()` / `.expect(..)` /
/// `.unwrap_or_else(..)` keep the guard (they unwrap the poison `Result`);
/// any other method call consumes it into a temporary.
fn guard_outlives_statement(ctx: &FileCtx, lock_si: usize) -> bool {
    let mut j = lock_si + 3; // past `read` `(` `)`
    loop {
        let Some(t) = ctx.sig.get(j).map(|&ti| &ctx.toks[ti]) else {
            return true;
        };
        if t.is_punct(';') {
            return true;
        }
        let unwrapish = t.is_punct('.')
            && ctx
                .sig
                .get(j + 1)
                .map(|&ti| &ctx.toks[ti])
                .is_some_and(|n| {
                    n.kind == TokenKind::Ident
                        && (n.text.starts_with("unwrap") || n.text == "expect")
                });
        if !unwrapish {
            return false;
        }
        // Skip `.name ( .. )` with paren matching.
        j += 2;
        if !ctx
            .sig
            .get(j)
            .map(|&ti| &ctx.toks[ti])
            .is_some_and(|p| p.is_punct('('))
        {
            return false;
        }
        let mut depth = 1usize;
        j += 1;
        while depth > 0 {
            let Some(t2) = ctx.sig.get(j).map(|&ti| &ctx.toks[ti]) else {
                return false;
            };
            if t2.is_punct('(') {
                depth += 1;
            } else if t2.is_punct(')') {
                depth -= 1;
            }
            j += 1;
        }
    }
}

// ---------------------------------------------------------------- AL005

/// Files whose output must be byte-identical across runs.
const AL005_SCOPE: &[&str] = &[
    "core/src/snapshot/tsv.rs",
    "core/src/snapshot/binary.rs",
    "core/src/snapshot/records.rs",
    "core/src/store.rs",
    "nn/src/persist.rs",
];

/// Methods that only exist on hash/ordered maps and sets.
const MAP_METHODS: &[&str] = &[
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Methods that iterate anything — flagged only on known hash bindings.
const ITER_METHODS: &[&str] = &["iter", "iter_mut", "into_iter"];

fn al005_canonical_iteration(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    if !AL005_SCOPE.iter().any(|s| ctx.path.ends_with(s)) {
        return;
    }
    for si in hash_iteration_sites(ctx, 0, ctx.sig.len()) {
        out.push(RawFinding::at(
            "AL005",
            ctx,
            si,
            "iteration over a hash collection in serialization code without a canonical sort; collect and sort (or use a BTree map) so artifacts are byte-identical across runs"
                .into(),
        ));
    }
}

/// Sig indices in `[lo, hi)` where a hash collection is iterated without a
/// canonicalizing sort nearby — AL005's detector, exposed over a range so
/// the workspace summaries ([`crate::symbols`]) can apply it per function
/// in any file (AL009 generalizes the rule through the call graph).
pub(crate) fn hash_iteration_sites(ctx: &FileCtx, lo: usize, hi: usize) -> Vec<usize> {
    let bindings = hash_bindings(ctx);
    let mut out = Vec::new();
    for si in lo..hi.min(ctx.sig.len()) {
        if ctx.is_test(si) {
            continue;
        }
        let t = ctx.tok(si);
        let mut candidate = false;
        if MAP_METHODS.iter().any(|m| is_method_call(ctx, si, m)) {
            candidate = true;
        } else if ITER_METHODS.iter().any(|m| is_method_call(ctx, si, m)) {
            let recv = receiver_chain(ctx, si - 1);
            let last = recv.rsplit('.').next().unwrap_or("");
            candidate = bindings.iter().any(|b| b == last);
        } else if t.is_ident("for") {
            // `for k in map { .. }` / `for (k, v) in &map { .. }`
            let mut j = si + 1;
            let mut seen_in = false;
            while j < ctx.sig.len() && j - si < 40 {
                let h = ctx.tok(j);
                if h.is_punct('{') || h.is_punct(';') {
                    break;
                }
                if h.is_ident("in") {
                    seen_in = true;
                } else if seen_in
                    && h.kind == TokenKind::Ident
                    && bindings.iter().any(|b| b == &h.text)
                {
                    candidate = true;
                    break;
                }
                j += 1;
            }
        }
        if candidate && !sorted_nearby(ctx, si) {
            out.push(si);
        }
    }
    out
}

/// Names of `let` bindings / parameters / fields with a hash-collection
/// type mentioned at their declaration.
fn hash_bindings(ctx: &FileCtx) -> Vec<String> {
    const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
    let mut out: Vec<String> = Vec::new();
    for si in 0..ctx.sig.len() {
        if !HASH_TYPES.iter().any(|h| ctx.tok(si).is_ident(h)) {
            continue;
        }
        // Walk left over the type path (`crate::util::FxHashMap`).
        let mut j = si;
        while j >= 3
            && ctx.tok(j - 1).is_punct(':')
            && ctx.tok(j - 2).is_punct(':')
            && ctx.tok(j - 3).kind == TokenKind::Ident
        {
            j -= 3;
        }
        if j == 0 {
            continue;
        }
        // Walk left over type wrappers to the annotation/assignment marker.
        let mut k = j - 1;
        let mut steps = 0;
        let name = loop {
            if steps > 10 {
                break None;
            }
            steps += 1;
            let t = ctx.tok(k);
            if t.is_punct('&')
                || t.is_punct('<')
                || t.is_ident("mut")
                || t.is_ident("dyn")
                || t.kind == TokenKind::Lifetime
            {
                if k == 0 {
                    break None;
                }
                k -= 1;
                continue;
            }
            if t.is_punct('>') {
                // `-> FxHashMap<..>` return type: no binding here.
                break None;
            }
            if t.is_punct(':') {
                if k >= 1 && ctx.tok(k - 1).is_punct(':') {
                    break None;
                }
                // `name: FxHashMap<..>` — param, field or annotated let.
                break (k >= 1 && ctx.tok(k - 1).kind == TokenKind::Ident)
                    .then(|| ctx.tok(k - 1).text.clone());
            }
            if t.is_punct('=') {
                // `let [mut] name = FxHashMap::default()` — find the `let`.
                let lo = k.saturating_sub(12);
                let let_si = (lo..k).rfind(|&m| ctx.tok(m).is_ident("let"));
                break let_si.and_then(|m| {
                    (m + 1..k)
                        .map(|n| ctx.tok(n))
                        .find(|t| t.kind == TokenKind::Ident && t.text != "mut")
                        .map(|t| t.text.clone())
                });
            }
            break None;
        };
        if let Some(n) = name {
            if !out.contains(&n) {
                out.push(n);
            }
        }
    }
    out
}

/// Whether a canonicalizing operation appears shortly after the iteration —
/// `.. .into_keys().collect(); result.sort();` style.
fn sorted_nearby(ctx: &FileCtx, si: usize) -> bool {
    (si..ctx.sig.len().min(si + 40)).any(|j| {
        let t = ctx.tok(j);
        t.kind == TokenKind::Ident
            && (t.text.starts_with("sort") || t.text.contains("BTree") || t.text == "TopK")
    })
}

// ---------------------------------------------------------------- AL006

fn al006_safety_comments(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    for si in 0..ctx.sig.len() {
        if !ctx.tok(si).is_ident("unsafe") {
            continue;
        }
        // Only `unsafe { .. }` blocks need a justification comment here;
        // `unsafe fn` / `unsafe impl` signatures document themselves.
        if si + 1 >= ctx.sig.len() || !ctx.tok(si + 1).is_punct('{') {
            continue;
        }
        let lo = if si == 0 { 0 } else { ctx.sig[si - 1] };
        let hi = ctx.sig[si];
        let justified = ctx.toks[lo..hi]
            .iter()
            .any(|t| t.kind == TokenKind::Comment && t.text.contains("SAFETY"));
        if !justified {
            out.push(RawFinding::at(
                "AL006",
                ctx,
                si,
                "`unsafe` block without a `// SAFETY:` comment stating why the invariants hold"
                    .into(),
            ));
        }
    }
}
