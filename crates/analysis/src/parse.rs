//! Lightweight structural analysis over the token stream.
//!
//! `alicoco-lint` does not build a full AST. The rules need three structural
//! facts the raw token stream cannot answer by itself:
//!
//! 1. **Is this token inside test code?** — `#[test]` functions and
//!    `#[cfg(test)]` modules are exempt from the serving-path rules.
//! 2. **Where are the blocks?** — lock-discipline analysis (AL004) walks
//!    brace-delimited scopes to track guard liveness.
//! 3. **Where do statements start and end?** — several rules reason about
//!    "in the same statement" / "in a following statement".
//!
//! All of this is computed once per file into a [`FileCtx`].

use crate::lexer::{Token, TokenKind};

/// Per-file context shared by every rule.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    /// Full token stream, comments included.
    pub toks: &'a [Token],
    /// Indices into `toks` of the significant (non-comment) tokens.
    pub sig: Vec<usize>,
    /// Per-`toks`-index flag: is this token inside a `#[test]` /
    /// `#[cfg(test)]` item?
    pub in_test: Vec<bool>,
}

impl<'a> FileCtx<'a> {
    /// Build the context for one file.
    pub fn new(path: &'a str, toks: &'a [Token]) -> Self {
        let sig: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != TokenKind::Comment)
            .map(|(i, _)| i)
            .collect();
        let in_test = mark_test_regions(toks, &sig);
        FileCtx {
            path,
            toks,
            sig,
            in_test,
        }
    }

    /// The significant token at sig-index `si`.
    pub fn tok(&self, si: usize) -> &Token {
        &self.toks[self.sig[si]]
    }

    /// Whether the significant token at sig-index `si` is inside test code.
    pub fn is_test(&self, si: usize) -> bool {
        self.in_test[self.sig[si]]
    }
}

/// Mark every token covered by a `#[test]`-like attribute's item as test
/// code. An attribute is test-like when its identifiers include `test` and
/// do not include `not` (so `#[cfg(not(test))]` stays serving code). The
/// covered item extends through the brace-block that follows the attribute
/// (skipping any further attributes and the item header), or through the
/// next top-level `;` for block-less items.
fn mark_test_regions(toks: &[Token], sig: &[usize]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let t = |si: usize| -> &Token { &toks[sig[si]] };
    let mut si = 0;
    while si + 1 < sig.len() {
        if !(t(si).is_punct('#') && t(si + 1).is_punct('[')) {
            si += 1;
            continue;
        }
        let attr_start = si;
        // Collect the attribute's tokens up to the matching `]`.
        let mut j = si + 2;
        let mut depth = 1usize;
        let mut idents: Vec<&str> = Vec::new();
        while j < sig.len() && depth > 0 {
            let tok = t(j);
            if tok.is_punct('[') {
                depth += 1;
            } else if tok.is_punct(']') {
                depth -= 1;
            } else if tok.kind == TokenKind::Ident {
                idents.push(&tok.text);
            }
            j += 1;
        }
        let attr_end = j; // first sig index after the closing `]`
        let is_test_attr = idents.contains(&"test") && !idents.contains(&"not");
        if !is_test_attr {
            si = attr_end;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut k = attr_end;
        while k + 1 < sig.len() && t(k).is_punct('#') && t(k + 1).is_punct('[') {
            let mut d = 1usize;
            k += 2;
            while k < sig.len() && d > 0 {
                if t(k).is_punct('[') {
                    d += 1;
                } else if t(k).is_punct(']') {
                    d -= 1;
                }
                k += 1;
            }
        }
        // Scan the item header for its body `{` (or terminating `;` for
        // block-less items), ignoring `;` inside parens/brackets such as
        // `fn f(x: [u8; 2])`.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut end = None;
        while k < sig.len() {
            let tok = t(k);
            if tok.is_punct('(') {
                paren += 1;
            } else if tok.is_punct(')') {
                paren -= 1;
            } else if tok.is_punct('[') {
                bracket += 1;
            } else if tok.is_punct(']') {
                bracket -= 1;
            } else if tok.is_punct(';') && paren == 0 && bracket == 0 {
                end = Some(k);
                break;
            } else if tok.is_punct('{') && paren == 0 && bracket == 0 {
                // Match braces through the item body.
                let mut d = 1usize;
                let mut m = k + 1;
                while m < sig.len() && d > 0 {
                    if t(m).is_punct('{') {
                        d += 1;
                    } else if t(m).is_punct('}') {
                        d -= 1;
                    }
                    m += 1;
                }
                end = Some(m.saturating_sub(1));
                break;
            }
            k += 1;
        }
        if let Some(end_si) = end {
            let lo = sig[attr_start];
            let hi = sig[end_si.min(sig.len() - 1)];
            for flag in in_test.iter_mut().take(hi + 1).skip(lo) {
                *flag = true;
            }
        }
        si = attr_end;
    }
    in_test
}

/// A brace-delimited scope, in sig-index space.
pub struct Block {
    /// Sig index of the opening `{`; `None` for the file-level pseudo-block.
    pub open: Option<usize>,
    /// Sig index one past the last token belonging to this block (the
    /// closing `}` itself, or `sig.len()` for the file level).
    pub close: usize,
    /// Nested blocks, in source order.
    pub children: Vec<Block>,
}

/// Build the tree of brace blocks for a file. Unbalanced braces (which a
/// compiling file never has) degrade gracefully by folding into the parent.
pub fn block_tree(ctx: &FileCtx) -> Block {
    let mut stack: Vec<Block> = vec![Block {
        open: None,
        close: ctx.sig.len(),
        children: Vec::new(),
    }];
    for si in 0..ctx.sig.len() {
        let tok = ctx.tok(si);
        if tok.is_punct('{') {
            stack.push(Block {
                open: Some(si),
                close: ctx.sig.len(),
                children: Vec::new(),
            });
        } else if tok.is_punct('}') && stack.len() > 1 {
            let mut done = match stack.pop() {
                Some(b) => b,
                None => continue,
            };
            done.close = si;
            if let Some(parent) = stack.last_mut() {
                parent.children.push(done);
            }
        }
    }
    // Fold any unterminated blocks into their parents.
    while stack.len() > 1 {
        let done = match stack.pop() {
            Some(b) => b,
            None => break,
        };
        if let Some(parent) = stack.last_mut() {
            parent.children.push(done);
        }
    }
    stack.pop().unwrap_or(Block {
        open: None,
        close: ctx.sig.len(),
        children: Vec::new(),
    })
}

/// One element at a block's direct nesting level: either a token or a whole
/// child block (whose interior tokens are not visible at this level).
#[derive(Clone, Copy)]
pub enum Piece {
    /// Sig index of a token at this level.
    Tok(usize),
    /// Index into the block's `children`.
    Child(usize),
}

/// Flatten a block's direct level into [`Piece`]s.
pub fn pieces(block: &Block) -> Vec<Piece> {
    let start = block.open.map_or(0, |o| o + 1);
    let mut out = Vec::new();
    let mut si = start;
    let mut child = 0usize;
    while si < block.close {
        if child < block.children.len() && block.children[child].open == Some(si) {
            out.push(Piece::Child(child));
            si = block.children[child].close + 1;
            child += 1;
        } else {
            out.push(Piece::Tok(si));
            si += 1;
        }
    }
    out
}

/// Split a block's pieces into statements. A statement ends at a top-level
/// `;` or just after a child block (covering `if`/`match`/loop bodies and
/// item bodies, which carry no semicolon).
pub fn statements(ctx: &FileCtx, block: &Block) -> Vec<Vec<Piece>> {
    let mut stmts = Vec::new();
    let mut cur: Vec<Piece> = Vec::new();
    for p in pieces(block) {
        match p {
            Piece::Tok(si) if ctx.tok(si).is_punct(';') => {
                cur.push(p);
                stmts.push(std::mem::take(&mut cur));
            }
            Piece::Child(_) => {
                cur.push(p);
                stmts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(p),
        }
    }
    if !cur.is_empty() {
        stmts.push(cur);
    }
    stmts
}

/// Reconstruct the receiver chain (`self.params`, `cfg`, ...) ending just
/// before the sig token at `dot_si` (which should be the `.` of a method
/// call). Returns an empty string when the receiver is not a simple
/// ident/field/path chain (e.g. ends in `)`).
pub fn receiver_chain(ctx: &FileCtx, dot_si: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut j = dot_si;
    while j > 0 {
        j -= 1;
        let tok = ctx.tok(j);
        let chainlike = tok.kind == TokenKind::Ident || tok.is_punct('.') || tok.is_punct(':');
        if chainlike {
            parts.push(&tok.text);
        } else {
            break;
        }
    }
    parts.reverse();
    parts.join("")
}

/// Rust keywords that can directly precede a `[` without it being an index
/// expression (`match [a, b] { .. }`, `return [0; 4]`, ...).
pub const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn live2() {}";
        let toks = lex(src);
        let ctx = FileCtx::new("f.rs", &toks);
        let unwraps: Vec<bool> = ctx
            .sig
            .iter()
            .enumerate()
            .filter(|(_, &ti)| toks[ti].is_ident("unwrap"))
            .map(|(si, _)| ctx.is_test(si))
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        let live2 = ctx
            .sig
            .iter()
            .position(|&ti| toks[ti].is_ident("live2"))
            .expect("live2 present");
        assert!(!ctx.in_test[ctx.sig[live2]]);
    }

    #[test]
    fn test_attr_fn_is_marked_but_not_neighbors() {
        let src = "#[test]\nfn check() { a.unwrap(); }\nfn serve() { b.unwrap(); }";
        let toks = lex(src);
        let ctx = FileCtx::new("f.rs", &toks);
        let flags: Vec<bool> = (0..ctx.sig.len())
            .filter(|&si| ctx.tok(si).is_ident("unwrap"))
            .map(|si| ctx.is_test(si))
            .collect();
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn serve() { b.unwrap(); }";
        let toks = lex(src);
        let ctx = FileCtx::new("f.rs", &toks);
        let si = (0..ctx.sig.len())
            .find(|&si| ctx.tok(si).is_ident("unwrap"))
            .expect("unwrap present");
        assert!(!ctx.is_test(si));
    }

    #[test]
    fn statements_split_on_semicolons_and_blocks() {
        let src = "fn f() { let a = 1; if x { g(); } h(); }";
        let toks = lex(src);
        let ctx = FileCtx::new("f.rs", &toks);
        let tree = block_tree(&ctx);
        // tree: file-level -> fn body -> if body
        assert_eq!(tree.children.len(), 1);
        let body = &tree.children[0];
        assert_eq!(body.children.len(), 1);
        let stmts = statements(&ctx, body);
        // `let a = 1;` | `if x {..}` | `h();`
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn receiver_chain_walks_fields() {
        let src = "self.params.read()";
        let toks = lex(src);
        let ctx = FileCtx::new("f.rs", &toks);
        let dot = (0..ctx.sig.len())
            .rfind(|&si| ctx.tok(si).is_punct('.'))
            .expect("dot present");
        assert_eq!(receiver_chain(&ctx, dot), "self.params");
    }

    #[test]
    fn receiver_chain_bails_on_calls() {
        let src = "make().read()";
        let toks = lex(src);
        let ctx = FileCtx::new("f.rs", &toks);
        let dot = (0..ctx.sig.len())
            .rfind(|&si| ctx.tok(si).is_punct('.'))
            .expect("dot present");
        assert_eq!(receiver_chain(&ctx, dot), "");
    }
}
