//! Machine-readable JSON report (hand-rolled: the workspace has no serde).

use crate::allowlist::Entry;
use crate::Finding;

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding, indent: &str) -> String {
    format!(
        "{indent}{{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\", \"snippet\": \"{}\", \"fingerprint\": \"{}\"}}",
        f.rule,
        json_escape(&f.path),
        f.line,
        f.col,
        json_escape(&f.message),
        json_escape(&f.snippet),
        f.fingerprint,
    )
}

/// Render the full report. Findings arrive pre-sorted by (path, line, col,
/// rule), so the output is deterministic for a given workspace state.
pub fn to_json(active: &[Finding], suppressed: &[Finding], stale: &[Entry]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"alicoco-lint\",\n");
    out.push_str(&format!(
        "  \"summary\": {{\"findings\": {}, \"suppressed\": {}, \"stale_allowlist_entries\": {}}},\n",
        active.len(),
        suppressed.len(),
        stale.len()
    ));
    for (key, list) in [("findings", active), ("suppressed", suppressed)] {
        out.push_str(&format!("  \"{key}\": [\n"));
        let rows: Vec<String> = list.iter().map(|f| finding_json(f, "    ")).collect();
        out.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n");
    }
    out.push_str("  \"stale_allowlist\": [\n");
    let rows: Vec<String> = stale
        .iter()
        .map(|e| {
            format!(
                "    {{\"rule\": \"{}\", \"fingerprint\": \"{}\", \"note\": \"{}\"}}",
                e.rule,
                e.fingerprint,
                json_escape(&e.note)
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    if !rows.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_json_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_shape_is_valid_enough() {
        let f = Finding {
            rule: "AL001",
            path: "crates/x/src/a.rs".into(),
            line: 3,
            col: 7,
            message: "m".into(),
            snippet: "let x = v[i];".into(),
            fingerprint: "0123456789abcdef".into(),
        };
        let json = to_json(&[f], &[], &[]);
        assert!(json.contains("\"findings\": 1"));
        assert!(json.contains("\"rule\": \"AL001\""));
        assert!(json.ends_with("]\n}\n"));
    }
}
