//! Command-line entry point for `alicoco-lint`.
//!
//! ```text
//! alicoco-lint [--root DIR] [--allowlist FILE] [--json FILE] [--sarif FILE]
//!              [--deny-stale] [--metrics] [--no-cache] [--cache-dir DIR]
//! ```
//!
//! Exit codes:
//!
//! - **0** — clean (possibly with vetted suppressions),
//! - **1** — active findings, or stale allowlist entries under
//!   `--deny-stale`,
//! - **2** — internal error: usage, I/O, or a corrupt cache entry.
//!
//! The incremental cache (default `<root>/target/alicoco-lint-cache`)
//! makes warm runs re-analyze only changed files; `--no-cache` forces a
//! full cold analysis and `--cache-dir` relocates the artifacts (CI points
//! it at its cross-run cache). `--metrics` times the run into
//! `analysis.lint_ns` via `crates/obs` and prints the registry export.

use std::path::PathBuf;
use std::process::ExitCode;

use analysis::allowlist::Allowlist;
use analysis::{report, sarif, LintOptions};

struct Args {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    json: Option<PathBuf>,
    sarif: Option<PathBuf>,
    deny_stale: bool,
    metrics: bool,
    no_cache: bool,
    cache_dir: Option<PathBuf>,
}

const USAGE: &str = "usage: alicoco-lint [--root DIR] [--allowlist FILE] [--json FILE] \
[--sarif FILE] [--deny-stale] [--metrics] [--no-cache] [--cache-dir DIR]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        allowlist: None,
        json: None,
        sarif: None,
        deny_stale: false,
        metrics: false,
        no_cache: false,
        cache_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--allowlist" => {
                args.allowlist = Some(PathBuf::from(it.next().ok_or("--allowlist needs a file")?));
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a file")?));
            }
            "--sarif" => {
                args.sarif = Some(PathBuf::from(it.next().ok_or("--sarif needs a file")?));
            }
            "--deny-stale" => args.deny_stale = true,
            "--metrics" => args.metrics = true,
            "--no-cache" => args.no_cache = true,
            "--cache-dir" => {
                args.cache_dir = Some(PathBuf::from(
                    it.next().ok_or("--cache-dir needs a directory")?,
                ));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let registry = obs::Registry::new();
    let span = args.metrics.then(|| registry.span("analysis.lint_ns"));
    let opts = LintOptions {
        cache_dir: if args.no_cache {
            None
        } else {
            Some(
                args.cache_dir
                    .clone()
                    .unwrap_or_else(|| args.root.join("target/alicoco-lint-cache")),
            )
        },
    };
    let run = match analysis::lint_workspace_with(&args.root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "alicoco-lint: analysis failed under `{}`: {e}",
                args.root.display()
            );
            return ExitCode::from(2);
        }
    };
    if args.metrics {
        registry
            .counter("analysis.files_seen")
            .add(run.files_seen as u64);
        registry
            .counter("analysis.cache_hits")
            .add(run.cache_hits as u64);
    }
    let allow_path = args
        .allowlist
        .clone()
        .unwrap_or_else(|| args.root.join("lint-allow.txt"));
    let allow = if allow_path.is_file() {
        let text = match std::fs::read_to_string(&allow_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("alicoco-lint: cannot read `{}`: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        };
        match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("alicoco-lint: {}: {msg}", allow_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Allowlist::empty()
    };
    let (active, suppressed, stale) = allow.apply(run.findings);
    for f in &active {
        println!("{}:{}:{}: {}: {}", f.path, f.line, f.col, f.rule, f.message);
        println!("    {}", f.snippet);
        println!(
            "    suppress with: {} {}  <justification>",
            f.rule, f.fingerprint
        );
    }
    for e in &stale {
        eprintln!(
            "alicoco-lint: {}: stale allowlist entry {} {} ({}) matches nothing — remove it",
            if args.deny_stale { "error" } else { "warning" },
            e.rule,
            e.fingerprint,
            e.note
        );
    }
    if let Some(json_path) = &args.json {
        let doc = report::to_json(&active, &suppressed, &stale);
        if let Err(e) = std::fs::write(json_path, doc) {
            eprintln!("alicoco-lint: cannot write `{}`: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(sarif_path) = &args.sarif {
        let doc = sarif::to_sarif(&active, &suppressed, &allow);
        if let Err(e) = std::fs::write(sarif_path, doc) {
            eprintln!("alicoco-lint: cannot write `{}`: {e}", sarif_path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(span) = span {
        span.stop();
    }
    println!(
        "alicoco-lint: {} finding(s), {} suppressed, {} stale allowlist entr{}, {}/{} file(s) from cache",
        active.len(),
        suppressed.len(),
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" },
        run.cache_hits,
        run.files_seen,
    );
    if args.metrics {
        println!("{}", registry.export_json());
    }
    if !active.is_empty() || (args.deny_stale && !stale.is_empty()) {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
