//! Command-line entry point for `alicoco-lint`.
//!
//! ```text
//! alicoco-lint [--root DIR] [--allowlist FILE] [--json FILE]
//! ```
//!
//! Exit codes: 0 = clean (possibly with vetted suppressions), 1 = active
//! findings, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use analysis::allowlist::Allowlist;
use analysis::{lint_workspace, report};

struct Args {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        allowlist: None,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--allowlist" => {
                args.allowlist = Some(PathBuf::from(it.next().ok_or("--allowlist needs a file")?));
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a file")?));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: alicoco-lint [--root DIR] [--allowlist FILE] [--json FILE]".to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let findings = match lint_workspace(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("alicoco-lint: cannot walk `{}`: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let allow_path = args
        .allowlist
        .clone()
        .unwrap_or_else(|| args.root.join("lint-allow.txt"));
    let allow = if allow_path.is_file() {
        let text = match std::fs::read_to_string(&allow_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("alicoco-lint: cannot read `{}`: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        };
        match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("alicoco-lint: {}: {msg}", allow_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Allowlist::empty()
    };
    let (active, suppressed, stale) = allow.apply(findings);
    for f in &active {
        println!("{}:{}:{}: {}: {}", f.path, f.line, f.col, f.rule, f.message);
        println!("    {}", f.snippet);
        println!(
            "    suppress with: {} {}  <justification>",
            f.rule, f.fingerprint
        );
    }
    for e in &stale {
        eprintln!(
            "alicoco-lint: warning: stale allowlist entry {} {} ({}) matches nothing — remove it",
            e.rule, e.fingerprint, e.note
        );
    }
    if let Some(json_path) = &args.json {
        let doc = report::to_json(&active, &suppressed, &stale);
        if let Err(e) = std::fs::write(json_path, doc) {
            eprintln!("alicoco-lint: cannot write `{}`: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    println!(
        "alicoco-lint: {} finding(s), {} suppressed, {} stale allowlist entr{}",
        active.len(),
        suppressed.len(),
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" }
    );
    if active.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
