//! Per-file symbol extraction for the workspace-level analyses.
//!
//! The call-graph rules (AL007–AL009, see [`crate::callgraph`]) need more
//! than a token stream: they need to know, for every file, which functions
//! it defines, what those functions call, and where the "interesting"
//! sites are — panic sites, lock acquisitions, hash-collection iterations,
//! clock reads. This module computes exactly that into a [`FileSummary`],
//! a compact, serializable artifact that is also what the incremental
//! cache ([`crate::cache`]) persists: the whole-workspace phase runs over
//! summaries only, never re-lexing unchanged files.
//!
//! Extraction is heuristic by design (there is no type checker here); the
//! heuristics and their blind spots are documented in `DESIGN.md` §10.

use crate::lexer::TokenKind;
use crate::parse::{block_tree, receiver_chain, statements, Block, FileCtx, Piece, KEYWORDS};
use crate::rules;

/// A source position plus the trimmed text of its line. Sites carry their
/// snippet so warm-cache runs can fingerprint and render findings without
/// re-reading the source file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Trimmed source line the site points at.
    pub snippet: String,
    /// Short description of what sits here (`.unwrap()`, `panic!`, ...).
    pub what: String,
}

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(..)` — a method call.
    Method,
    /// `Qual::name(..)` — a path call; the qualifier is the last path
    /// segment before the name (`TopK` in `rank::TopK::new`).
    Path(String),
    /// `name(..)` — a free function call.
    Free,
}

/// What we could infer about a method call's receiver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecvHint {
    /// Receiver is `self`: the enclosing impl type.
    SelfType,
    /// Receiver is `self.<field>`: resolved via the struct table globally.
    SelfField(String),
    /// Receiver's type head was inferred locally (param / annotated let /
    /// constructor call).
    Known(String),
    /// No local inference succeeded; resolution falls back to name match.
    Unknown,
}

/// One call site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// Call shape.
    pub kind: CallKind,
    /// Receiver inference (only meaningful for [`CallKind::Method`]).
    pub recv: RecvHint,
    /// 1-based line of the callee name.
    pub line: u32,
    /// Normalized lock chains (see [`LockAcq::chain`]) held when the call
    /// is made — the raw material for interprocedural lock-order edges.
    pub held: Vec<String>,
}

/// One lock acquisition (`.read()` / `.write()` / `.lock()` with no
/// arguments, or a `*lock*`-named helper taking a lock field by
/// reference).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockAcq {
    /// Normalized receiver chain: `<Self>.field` for `self.field`,
    /// `<T>.field` when the base variable's type head `T` was inferred,
    /// otherwise the raw chain as written. The global phase maps chains to
    /// canonical `Type.field` lock ids via the struct table.
    pub chain: String,
    /// Source site of the acquisition.
    pub site: Site,
    /// Chains already held when this one is acquired.
    pub held: Vec<String>,
}

/// One function (or method) defined in a file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type head, if any.
    pub self_type: Option<String>,
    /// Whether the function takes a `self` receiver.
    pub has_self: bool,
    /// Whether the item is `pub` (unrestricted; `pub(crate)` is not).
    pub is_pub: bool,
    /// Whether it sits inside a `#[test]` / `#[cfg(test)]` region.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Head type of the return type, if any (`-> Vec<Foo>` → `Vec`).
    pub ret_type: Option<String>,
    /// Calls made by the body (closure bodies included: a closure passed
    /// to `Trainer`/`thread::scope` runs on behalf of this function).
    pub calls: Vec<CallSite>,
    /// Panic sites in the body (unwrap/expect, panicking macros, bare
    /// indexing with the AL001 exemptions).
    pub panics: Vec<Site>,
    /// Lock acquisitions in the body, in source order.
    pub locks: Vec<LockAcq>,
    /// Hash-collection iterations with no canonicalizing sort nearby.
    pub hash_iters: Vec<Site>,
    /// Direct `Instant::now()` / `SystemTime::now()` reads.
    pub clock_reads: Vec<Site>,
}

/// A struct definition's lock-relevant shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructInfo {
    /// Struct name.
    pub name: String,
    /// `(field, type head, is_lock)` triples; `is_lock` is true when the
    /// declared type mentions `RwLock` or `Mutex`.
    pub fields: Vec<(String, String, bool)>,
}

/// Everything the workspace-level phase needs to know about one file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FileSummary {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Functions defined in the file.
    pub functions: Vec<FnInfo>,
    /// Structs defined in the file.
    pub structs: Vec<StructInfo>,
    /// All type names the file declares (`struct`/`enum`/`trait`/`union`),
    /// sorted and deduplicated. Resolution uses these to tell whether a
    /// receiver type named `X` is the caller's own crate's `X` or an
    /// unrelated same-named type from another crate.
    pub types: Vec<String>,
}

impl FileSummary {
    /// Crate name segment of the path (`crates/<name>/...`), or `""`.
    pub fn crate_name(&self) -> &str {
        self.path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
    }

    /// Whether the file is crate source (not `tests/`, `benches/`,
    /// `examples/`). Only source files participate in the call graph.
    pub fn is_src(&self) -> bool {
        self.path.contains("/src/")
    }
}

/// Extract the summary for one file.
pub fn summarize(ctx: &FileCtx, src: &str) -> FileSummary {
    let lines: Vec<&str> = src.lines().collect();
    let site = |si: usize, what: &str| -> Site {
        let t = ctx.tok(si);
        Site {
            line: t.line,
            col: t.col,
            snippet: lines
                .get(t.line as usize - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
            what: what.to_string(),
        }
    };
    let impls = impl_ranges(ctx);
    let structs = struct_infos(ctx);
    let fn_ranges = fn_body_ranges(ctx);
    let mut functions = Vec::new();
    for fr in &fn_ranges {
        let self_type = impls
            .iter()
            .find(|(open, close, _)| fr.fn_si > *open && fr.fn_si < *close)
            .map(|(_, _, ty)| ty.clone());
        let nested: Vec<(usize, usize)> = fn_ranges
            .iter()
            .filter(|o| o.fn_si > fr.body_open && o.body_close <= fr.body_close)
            .map(|o| (o.fn_si, o.body_close))
            .collect();
        let vars = local_types(ctx, fr, &structs);
        let mut info = FnInfo {
            name: fr.name.clone(),
            self_type,
            has_self: fr.has_self,
            is_pub: fr.is_pub,
            is_test: ctx.is_test(fr.fn_si),
            line: ctx.tok(fr.fn_si).line,
            ret_type: fr.ret_type.clone(),
            calls: Vec::new(),
            panics: Vec::new(),
            locks: Vec::new(),
            hash_iters: Vec::new(),
            clock_reads: Vec::new(),
        };
        let in_nested =
            |si: usize| -> bool { nested.iter().any(|(lo, hi)| si >= *lo && si <= *hi) };
        // Single pass over the body for calls, panics and clock reads.
        let mut si = fr.body_open + 1;
        while si < fr.body_close {
            if in_nested(si) {
                si += 1;
                continue;
            }
            if let Some(what) = panic_site_at(ctx, si) {
                info.panics.push(site(si, what));
            }
            if clock_read_at(ctx, si) {
                info.clock_reads.push(site(si, "clock read"));
            }
            if let Some(call) = call_at(ctx, si, &vars) {
                info.calls.push(call);
            }
            si += 1;
        }
        // Guard-liveness walk for lock acquisitions and held-at-call sets.
        let tree = block_tree(ctx);
        if let Some(body) = find_block(&tree, fr.body_open) {
            let mut live: Vec<(String, String)> = Vec::new();
            lock_walk(ctx, body, &vars, &mut live, &mut info, &site, &in_nested);
        }
        // Hash iteration without canonicalization (AL005 machinery,
        // generalized to every file).
        for hit in rules::hash_iteration_sites(ctx, fr.body_open + 1, fr.body_close) {
            if !in_nested(hit) {
                let s = site(hit, "hash iteration");
                // One statement can surface several candidate tokens (the
                // loop binding and the `.iter()`/`.drain()` call); one
                // finding per line is plenty.
                if info.hash_iters.last().map(|p| p.line) != Some(s.line) {
                    info.hash_iters.push(s);
                }
            }
        }
        functions.push(info);
    }
    FileSummary {
        path: ctx.path.to_string(),
        functions,
        structs,
        types: declared_types(ctx),
    }
}

/// Names of all `struct`/`enum`/`trait`/`union` declarations in the file.
fn declared_types(ctx: &FileCtx) -> Vec<String> {
    let n = ctx.sig.len();
    let mut out: Vec<String> = Vec::new();
    for si in 0..n {
        let t = ctx.tok(si);
        if !(t.is_ident("struct")
            || t.is_ident("enum")
            || t.is_ident("trait")
            || t.is_ident("union"))
        {
            continue;
        }
        if let Some(name) = (si + 1 < n).then(|| ctx.tok(si + 1)) {
            if name.kind == TokenKind::Ident && !KEYWORDS.contains(&name.text.as_str()) {
                out.push(name.text.clone());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

// ------------------------------------------------------------- fn layout

struct FnRange {
    name: String,
    fn_si: usize,
    body_open: usize,
    body_close: usize,
    has_self: bool,
    is_pub: bool,
    ret_type: Option<String>,
    param_types: Vec<(String, String)>,
}

/// Locate every `fn` item with a body. Trait-method declarations (ending
/// in `;`) and `fn` pointer types (`fn(u32) -> u32`) are skipped.
fn fn_body_ranges(ctx: &FileCtx) -> Vec<FnRange> {
    let mut out = Vec::new();
    let n = ctx.sig.len();
    for si in 0..n {
        if !ctx.tok(si).is_ident("fn") {
            continue;
        }
        let Some(name_si) = (si + 1 < n).then_some(si + 1) else {
            continue;
        };
        let name_tok = ctx.tok(name_si);
        if name_tok.kind != TokenKind::Ident {
            continue; // `fn(..)` pointer type
        }
        // Skip generics to the parameter list.
        let mut j = name_si + 1;
        if j < n && ctx.tok(j).is_punct('<') {
            let mut depth = 1i32;
            j += 1;
            while j < n && depth > 0 {
                if ctx.tok(j).is_punct('<') {
                    depth += 1;
                } else if ctx.tok(j).is_punct('>') {
                    depth -= 1;
                }
                j += 1;
            }
        }
        if j >= n || !ctx.tok(j).is_punct('(') {
            continue;
        }
        let params_open = j;
        let mut depth = 1i32;
        j += 1;
        while j < n && depth > 0 {
            if ctx.tok(j).is_punct('(') {
                depth += 1;
            } else if ctx.tok(j).is_punct(')') {
                depth -= 1;
            }
            j += 1;
        }
        let params_close = j - 1;
        // Return type head, if present.
        let mut ret_type = None;
        let mut k = j;
        if k + 1 < n && ctx.tok(k).is_punct('-') && ctx.tok(k + 1).is_punct('>') {
            let mut ty = Vec::new();
            let mut m = k + 2;
            while m < n {
                let t = ctx.tok(m);
                if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
                    break;
                }
                ty.push(m);
                m += 1;
            }
            ret_type = type_head(ctx, &ty);
            k = m;
        }
        // Find the body `{` (skipping a `where` clause), or bail on `;`.
        let mut body_open = None;
        while k < n {
            let t = ctx.tok(k);
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('{') {
                body_open = Some(k);
                break;
            }
            k += 1;
        }
        let Some(body_open) = body_open else { continue };
        let mut d = 1i32;
        let mut m = body_open + 1;
        while m < n && d > 0 {
            if ctx.tok(m).is_punct('{') {
                d += 1;
            } else if ctx.tok(m).is_punct('}') {
                d -= 1;
            }
            m += 1;
        }
        let body_close = m.saturating_sub(1);
        let (has_self, param_types) = parse_params(ctx, params_open, params_close);
        let is_pub = (si >= 1 && ctx.tok(si - 1).is_ident("pub"))
            || (si >= 2
                && ctx.tok(si - 2).is_ident("pub")
                && matches!(
                    ctx.tok(si - 1).text.as_str(),
                    "const" | "unsafe" | "async" | "extern"
                ));
        out.push(FnRange {
            name: name_tok.text.clone(),
            fn_si: si,
            body_open,
            body_close,
            has_self,
            is_pub,
            ret_type,
            param_types,
        });
    }
    out
}

/// `(has_self, [(param name, type head)])` from a parameter list.
fn parse_params(ctx: &FileCtx, open: usize, close: usize) -> (bool, Vec<(String, String)>) {
    let mut has_self = false;
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut start = open + 1;
    let mut i = open + 1;
    while i <= close {
        let t = ctx.tok(i);
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        }
        let ends = (t.is_punct(',') && depth == 0) || i == close;
        if ends {
            let hi = i;
            if start < hi {
                let toks: Vec<usize> = (start..hi).collect();
                if toks.iter().any(|&k| ctx.tok(k).is_ident("self")) && params.is_empty() {
                    has_self = true;
                } else {
                    // `name: Type`
                    let colon = toks.iter().position(|&k| ctx.tok(k).is_punct(':'));
                    if let Some(c) = colon {
                        if c >= 1 && ctx.tok(toks[c - 1]).kind == TokenKind::Ident {
                            let name = ctx.tok(toks[c - 1]).text.clone();
                            if let Some(head) = type_head(ctx, &toks[c + 1..]) {
                                params.push((name, head));
                            }
                        }
                    }
                }
            }
            start = i + 1;
        }
        i += 1;
    }
    (has_self, params)
}

/// Head type of a type token run: skips references, `mut`, lifetimes,
/// `dyn`/`impl`, descends through `Arc`/`Rc`/`Box`, and takes the last
/// segment of the first path (`alicoco::query::QueryIndex` → `QueryIndex`,
/// `Arc<RwLock<Tensor>>` → `RwLock`).
pub(crate) fn type_head(ctx: &FileCtx, toks: &[usize]) -> Option<String> {
    let mut i = 0;
    while i < toks.len() {
        let t = ctx.tok(toks[i]);
        if t.is_punct('&')
            || t.is_punct('*')
            || t.is_ident("mut")
            || t.is_ident("const")
            || t.is_ident("dyn")
            || t.is_ident("impl")
            || t.kind == TokenKind::Lifetime
        {
            i += 1;
            continue;
        }
        break;
    }
    // Collect the path `a :: b :: C`.
    let mut last: Option<String> = None;
    while i < toks.len() {
        let t = ctx.tok(toks[i]);
        if t.kind == TokenKind::Ident {
            last = Some(t.text.clone());
            i += 1;
            if i + 1 < toks.len()
                && ctx.tok(toks[i]).is_punct(':')
                && ctx.tok(toks[i + 1]).is_punct(':')
            {
                i += 2;
                continue;
            }
            break;
        }
        return None;
    }
    let head = last?;
    if matches!(head.as_str(), "Arc" | "Rc" | "Box" | "Option") {
        // Descend into the wrapper's first type argument.
        if i < toks.len() && ctx.tok(toks[i]).is_punct('<') {
            let mut depth = 1i32;
            let mut inner = Vec::new();
            let mut j = i + 1;
            while j < toks.len() && depth > 0 {
                let t = ctx.tok(toks[j]);
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') {
                    depth -= 1;
                } else if t.is_punct(',') && depth == 1 {
                    break;
                }
                if depth > 0 {
                    inner.push(toks[j]);
                }
                j += 1;
            }
            if let Some(h) = type_head(ctx, &inner) {
                return Some(h);
            }
        }
    }
    Some(head)
}

// ------------------------------------------------------------ impl/struct

/// `(open brace si, close si, type head)` for every `impl` item.
fn impl_ranges(ctx: &FileCtx) -> Vec<(usize, usize, String)> {
    let n = ctx.sig.len();
    let mut out = Vec::new();
    for si in 0..n {
        if !ctx.tok(si).is_ident("impl") {
            continue;
        }
        // Skip generics.
        let mut j = si + 1;
        if j < n && ctx.tok(j).is_punct('<') {
            let mut depth = 1i32;
            j += 1;
            while j < n && depth > 0 {
                if ctx.tok(j).is_punct('<') {
                    depth += 1;
                } else if ctx.tok(j).is_punct('>') {
                    depth -= 1;
                }
                j += 1;
            }
        }
        // Collect path tokens up to `{`, `for`, or `where`; if `for`
        // appears, the type is what follows it.
        let mut ty_toks: Vec<usize> = Vec::new();
        let mut body_open = None;
        while j < n {
            let t = ctx.tok(j);
            if t.is_punct('{') {
                body_open = Some(j);
                break;
            }
            if t.is_ident("for") {
                ty_toks.clear();
            } else if t.is_ident("where") {
                // Type is already collected; scan on for the brace.
            } else {
                ty_toks.push(j);
            }
            j += 1;
        }
        let Some(open) = body_open else { continue };
        let Some(head) = type_head(ctx, &ty_toks) else {
            continue;
        };
        let mut d = 1i32;
        let mut m = open + 1;
        while m < n && d > 0 {
            if ctx.tok(m).is_punct('{') {
                d += 1;
            } else if ctx.tok(m).is_punct('}') {
                d -= 1;
            }
            m += 1;
        }
        out.push((open, m.saturating_sub(1), head));
    }
    out
}

/// Struct definitions with named fields and their type heads.
fn struct_infos(ctx: &FileCtx) -> Vec<StructInfo> {
    let n = ctx.sig.len();
    let mut out = Vec::new();
    for si in 0..n {
        if !ctx.tok(si).is_ident("struct") || si + 1 >= n {
            continue;
        }
        let name_tok = ctx.tok(si + 1);
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // Skip generics, find `{` (tuple structs / unit structs skipped).
        let mut j = si + 2;
        if j < n && ctx.tok(j).is_punct('<') {
            let mut depth = 1i32;
            j += 1;
            while j < n && depth > 0 {
                if ctx.tok(j).is_punct('<') {
                    depth += 1;
                } else if ctx.tok(j).is_punct('>') {
                    depth -= 1;
                }
                j += 1;
            }
        }
        while j < n && ctx.tok(j).is_ident("where") {
            // `struct S<T> where T: X { .. }` — scan to the brace.
            while j < n && !ctx.tok(j).is_punct('{') {
                j += 1;
            }
        }
        if j >= n || !ctx.tok(j).is_punct('{') {
            continue;
        }
        let open = j;
        let mut d = 1i32;
        let mut m = open + 1;
        while m < n && d > 0 {
            if ctx.tok(m).is_punct('{') {
                d += 1;
            } else if ctx.tok(m).is_punct('}') {
                d -= 1;
            }
            m += 1;
        }
        let close = m.saturating_sub(1);
        let mut fields = Vec::new();
        // Fields: `name: Type,` at depth 0 inside the braces.
        let mut depth = 0i32;
        let mut k = open + 1;
        let mut field_start = open + 1;
        while k <= close {
            let t = ctx.tok(k);
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') || t.is_punct('}') {
                depth -= 1;
            }
            if (t.is_punct(',') && depth == 0) || k == close {
                let toks: Vec<usize> = (field_start..k).collect();
                let colon = toks.iter().position(|&x| {
                    ctx.tok(x).is_punct(':')
                        && toks
                            .iter()
                            .position(|&y| y == x + 1)
                            .map(|p| !ctx.tok(toks[p]).is_punct(':'))
                            .unwrap_or(true)
                        && (x == 0 || !ctx.tok(x - 1).is_punct(':'))
                });
                if let Some(c) = colon {
                    if c >= 1 && ctx.tok(toks[c - 1]).kind == TokenKind::Ident {
                        let fname = ctx.tok(toks[c - 1]).text.clone();
                        let ty = &toks[c + 1..];
                        let is_lock = ty.iter().any(|&x| {
                            ctx.tok(x).is_ident("RwLock") || ctx.tok(x).is_ident("Mutex")
                        });
                        if let Some(head) = type_head(ctx, ty) {
                            fields.push((fname, head, is_lock));
                        }
                    }
                }
                field_start = k + 1;
            }
            k += 1;
        }
        out.push(StructInfo {
            name: name_tok.text.clone(),
            fields,
        });
    }
    out
}

// ----------------------------------------------------------- local types

/// Variable → type-head map for one function: parameters plus `let`
/// bindings with an annotation or a `Type::ctor(..)` / `Type { .. }`
/// initializer.
fn local_types(ctx: &FileCtx, fr: &FnRange, _structs: &[StructInfo]) -> Vec<(String, String)> {
    let mut vars: Vec<(String, String)> = fr.param_types.clone();
    let n = fr.body_close;
    let mut si = fr.body_open + 1;
    while si < n {
        if ctx.tok(si).is_ident("let") && si + 1 < n {
            // `let [mut] name`
            let mut j = si + 1;
            if ctx.tok(j).is_ident("mut") {
                j += 1;
            }
            if j < n && ctx.tok(j).kind == TokenKind::Ident {
                let name = ctx.tok(j).text.clone();
                let mut head = None;
                if j + 1 < n && ctx.tok(j + 1).is_punct(':') {
                    // Annotated: collect type tokens to `=` or `;`.
                    let mut ty = Vec::new();
                    let mut m = j + 2;
                    let mut depth = 0i32;
                    while m < n {
                        let t = ctx.tok(m);
                        if t.is_punct('<') {
                            depth += 1;
                        } else if t.is_punct('>') {
                            depth -= 1;
                        }
                        if depth == 0 && (t.is_punct('=') || t.is_punct(';')) {
                            break;
                        }
                        ty.push(m);
                        m += 1;
                    }
                    head = type_head(ctx, &ty);
                } else if j + 1 < n && ctx.tok(j + 1).is_punct('=') {
                    // `let x = Type::ctor(..)` or `let x = Type { .. }`.
                    let mut m = j + 2;
                    let mut path_last = None;
                    while m < n && ctx.tok(m).kind == TokenKind::Ident {
                        path_last = Some(ctx.tok(m).text.clone());
                        if m + 2 < n && ctx.tok(m + 1).is_punct(':') && ctx.tok(m + 2).is_punct(':')
                        {
                            m += 3;
                        } else {
                            m += 1;
                            break;
                        }
                    }
                    if let Some(last) = path_last {
                        let starts_upper = last.chars().next().is_some_and(|c| c.is_uppercase());
                        if starts_upper && m < n && ctx.tok(m).is_punct('{') {
                            head = Some(last);
                        } else if m < n && ctx.tok(m).is_punct('(') {
                            // `Type::ctor(..)`: the *qualifier* is the type.
                            // Re-scan to find the segment before the final one.
                            let mut segs = Vec::new();
                            let mut q = j + 2;
                            while q < m {
                                if ctx.tok(q).kind == TokenKind::Ident {
                                    segs.push(ctx.tok(q).text.clone());
                                }
                                q += 1;
                            }
                            if segs.len() >= 2 {
                                let qual = &segs[segs.len() - 2];
                                if qual.chars().next().is_some_and(|c| c.is_uppercase()) {
                                    head = Some(qual.clone());
                                }
                            }
                        }
                    }
                }
                if let Some(h) = head {
                    vars.retain(|(v, _)| v != &name);
                    vars.push((name, h));
                }
            }
        }
        si += 1;
    }
    vars
}

// ------------------------------------------------------------ site scans

/// Method names whose empty-arg call is a lock acquisition.
const LOCK_METHODS: &[&str] = &["read", "write", "lock"];

/// Panic-site detection shared with AL001: `.unwrap()` / `.expect(`,
/// panicking macros, or bare indexing (typed-id and `[..]` exempt).
fn panic_site_at(ctx: &FileCtx, si: usize) -> Option<&'static str> {
    if rules::is_method_call(ctx, si, "unwrap") {
        return Some(".unwrap()");
    }
    if rules::is_method_call(ctx, si, "expect") {
        return Some(".expect(..)");
    }
    for m in ["panic", "unreachable", "todo", "unimplemented"] {
        if rules::is_macro_call(ctx, si, m) {
            return match m {
                "panic" => Some("panic!"),
                "unreachable" => Some("unreachable!"),
                "todo" => Some("todo!"),
                _ => Some("unimplemented!"),
            };
        }
    }
    if rules::bare_index_site(ctx, si) {
        return Some("bare indexing");
    }
    None
}

/// `Instant::now()` / `SystemTime::now()` at `si` (pointing at `now`).
fn clock_read_at(ctx: &FileCtx, si: usize) -> bool {
    if !ctx.tok(si).is_ident("now") {
        return false;
    }
    if si + 1 >= ctx.sig.len() || !ctx.tok(si + 1).is_punct('(') {
        return false;
    }
    if si < 3 {
        return false;
    }
    let qual_ok = ctx.tok(si - 1).is_punct(':')
        && ctx.tok(si - 2).is_punct(':')
        && (ctx.tok(si - 3).is_ident("Instant") || ctx.tok(si - 3).is_ident("SystemTime"));
    qual_ok
}

/// Parse the call at `si` (pointing at an ident), if any.
fn call_at(ctx: &FileCtx, si: usize, vars: &[(String, String)]) -> Option<CallSite> {
    let t = ctx.tok(si);
    if t.kind != TokenKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    let n = ctx.sig.len();
    if si + 1 >= n {
        return None;
    }
    // Macro invocations are not calls.
    if ctx.tok(si + 1).is_punct('!') {
        return None;
    }
    // `name::<T>(..)` turbofish: allow `::<..>` between name and `(`.
    let mut open = si + 1;
    if open + 1 < n && ctx.tok(open).is_punct(':') && ctx.tok(open + 1).is_punct(':') {
        if open + 2 < n && ctx.tok(open + 2).is_punct('<') {
            let mut depth = 1i32;
            let mut j = open + 3;
            while j < n && depth > 0 {
                if ctx.tok(j).is_punct('<') {
                    depth += 1;
                } else if ctx.tok(j).is_punct('>') {
                    depth -= 1;
                }
                j += 1;
            }
            open = j;
        } else {
            return None; // `name::more` — path continues, not the callee.
        }
    }
    if open >= n || !ctx.tok(open).is_punct('(') {
        return None;
    }
    // Definition, not call.
    if si >= 1 && ctx.tok(si - 1).is_ident("fn") {
        return None;
    }
    let line = t.line;
    if si >= 1 && ctx.tok(si - 1).is_punct('.') {
        // Method call: infer the receiver.
        let chain = receiver_chain(ctx, si - 1);
        let recv = recv_hint(&chain, vars);
        return Some(CallSite {
            name: t.text.clone(),
            kind: CallKind::Method,
            recv,
            line,
            held: Vec::new(),
        });
    }
    if si >= 3 && ctx.tok(si - 1).is_punct(':') && ctx.tok(si - 2).is_punct(':') {
        let qual = ctx.tok(si - 3);
        if qual.kind == TokenKind::Ident {
            return Some(CallSite {
                name: t.text.clone(),
                kind: CallKind::Path(qual.text.clone()),
                recv: RecvHint::Unknown,
                line,
                held: Vec::new(),
            });
        }
        return None;
    }
    Some(CallSite {
        name: t.text.clone(),
        kind: CallKind::Free,
        recv: RecvHint::Unknown,
        line,
        held: Vec::new(),
    })
}

/// Receiver inference from a dotted chain and the local var table.
fn recv_hint(chain: &str, vars: &[(String, String)]) -> RecvHint {
    if chain.is_empty() {
        return RecvHint::Unknown;
    }
    let mut segs = chain.split('.');
    let base = segs.next().unwrap_or("");
    let rest: Vec<&str> = segs.collect();
    if base == "self" {
        return match rest.len() {
            0 => RecvHint::SelfType,
            1 => RecvHint::SelfField(rest[0].to_string()),
            _ => RecvHint::Unknown,
        };
    }
    if rest.is_empty() {
        if let Some((_, ty)) = vars.iter().find(|(v, _)| v == base) {
            return RecvHint::Known(ty.clone());
        }
    }
    RecvHint::Unknown
}

/// Normalize a lock receiver chain: `self.f` → `<Self>.f`; `x.f` with `x`
/// locally typed `T` → `<T>.f`; otherwise the raw chain.
fn normalize_lock_chain(chain: &str, vars: &[(String, String)]) -> String {
    let mut segs: Vec<&str> = chain.split('.').filter(|s| !s.is_empty()).collect();
    if segs.is_empty() {
        return chain.to_string();
    }
    if segs[0] == "self" {
        segs[0] = "<Self>";
        return segs.join(".");
    }
    if let Some((_, ty)) = vars.iter().find(|(v, _)| v == segs[0]) {
        let owned = format!("<{ty}>");
        let mut out = vec![owned];
        out.extend(segs[1..].iter().map(|s| s.to_string()));
        return out.join(".");
    }
    segs.join(".")
}

fn find_block(tree: &Block, open: usize) -> Option<&Block> {
    if tree.open == Some(open) {
        return Some(tree);
    }
    for c in &tree.children {
        if let Some(b) = find_block(c, open) {
            return Some(b);
        }
    }
    None
}

/// Walk a function body's block tree tracking live lock guards, recording
/// acquisitions (with held-sets) and annotating call sites with the locks
/// held when they run.
#[allow(clippy::too_many_arguments)]
fn lock_walk(
    ctx: &FileCtx,
    block: &Block,
    vars: &[(String, String)],
    live: &mut Vec<(String, String)>, // (guard binding name, lock chain)
    info: &mut FnInfo,
    site: &dyn Fn(usize, &str) -> Site,
    in_nested: &dyn Fn(usize) -> bool,
) {
    let base = live.len();
    for stmt in statements(ctx, block) {
        let toks: Vec<usize> = stmt
            .iter()
            .filter_map(|p| match p {
                Piece::Tok(si) => Some(*si),
                Piece::Child(_) => None,
            })
            .collect();
        // Temporaries acquired in this statement (held to end of stmt).
        let mut stmt_held: Vec<String> = Vec::new();
        for &si in &toks {
            if in_nested(si) {
                continue;
            }
            // Direct lock acquisition: `.read()` / `.write()` / `.lock()`.
            let direct = LOCK_METHODS.iter().find(|m| {
                rules::is_method_call(ctx, si, m)
                    && si + 2 < ctx.sig.len()
                    && ctx.tok(si + 2).is_punct(')')
            });
            // Helper-mediated: `read_lock(&self.value)` — a free call whose
            // name mentions `lock` taking a field chain by reference.
            let helper = helper_lock_arg(ctx, si);
            let chain = if direct.is_some() {
                let c = receiver_chain(ctx, si - 1);
                (!c.is_empty()).then(|| normalize_lock_chain(&c, vars))
            } else {
                helper.map(|c| normalize_lock_chain(&c, vars))
            };
            if let Some(chain) = chain {
                let mut held: Vec<String> = live.iter().map(|(_, c)| c.clone()).collect();
                held.extend(stmt_held.iter().cloned());
                held.retain(|h| h != &chain);
                info.locks.push(LockAcq {
                    chain: chain.clone(),
                    site: site(si, "lock acquisition"),
                    held,
                });
                stmt_held.push(chain);
            }
            // Annotate call sites with held locks (match by line + name).
            if let Some(c) = call_at(ctx, si, vars) {
                let mut held: Vec<String> = live.iter().map(|(_, ch)| ch.clone()).collect();
                held.extend(stmt_held.iter().cloned());
                if !held.is_empty() {
                    if let Some(existing) = info
                        .calls
                        .iter_mut()
                        .find(|e| e.line == c.line && e.name == c.name && e.held.is_empty())
                    {
                        existing.held = held;
                    }
                }
            }
        }
        // `drop(g)` kills a guard.
        for w in toks.windows(4) {
            if ctx.tok(w[0]).is_ident("drop")
                && ctx.tok(w[1]).is_punct('(')
                && ctx.tok(w[3]).is_punct(')')
            {
                let victim = &ctx.tok(w[2]).text;
                live.retain(|(g, _)| g != victim);
            }
        }
        // Recurse with current liveness.
        for p in &stmt {
            if let Piece::Child(c) = p {
                lock_walk(ctx, &block.children[*c], vars, live, info, site, in_nested);
            }
        }
        // `let g = <acquisition>;` with the guard outliving the statement
        // starts a live guard.
        let starts_let = toks.first().is_some_and(|&si| ctx.tok(si).is_ident("let"));
        if starts_let && !stmt_held.is_empty() {
            // Find the acquisition site again to test guard survival.
            let acq_si = toks.iter().copied().find(|&si| {
                LOCK_METHODS
                    .iter()
                    .any(|m| rules::is_method_call(ctx, si, m))
                    || helper_lock_arg(ctx, si).is_some()
            });
            let outlives = acq_si.is_some_and(|si| guard_survives(ctx, si));
            if outlives {
                let name = toks
                    .iter()
                    .skip(1)
                    .map(|&si| ctx.tok(si))
                    .find(|t| t.kind == TokenKind::Ident && t.text != "mut")
                    .map(|t| t.text.clone());
                if let Some(name) = name.filter(|n| n != "_") {
                    live.push((name, stmt_held[0].clone()));
                }
            }
        }
    }
    live.truncate(base);
}

/// For a free call at `si` whose name mentions "lock", the dotted chain of
/// a `&chain` / `&mut chain` argument (the lock being acquired on the
/// caller's behalf), if the argument is a simple field chain.
fn helper_lock_arg(ctx: &FileCtx, si: usize) -> Option<String> {
    let t = ctx.tok(si);
    if t.kind != TokenKind::Ident || !t.text.contains("lock") || KEYWORDS.contains(&t.text.as_str())
    {
        return None;
    }
    if si >= 1 && (ctx.tok(si - 1).is_punct('.') || ctx.tok(si - 1).is_ident("fn")) {
        return None;
    }
    if si + 1 >= ctx.sig.len() || !ctx.tok(si + 1).is_punct('(') {
        return None;
    }
    // Expect `( & [mut] ident (. ident)* )`.
    let n = ctx.sig.len();
    let mut j = si + 2;
    if j < n && ctx.tok(j).is_punct('&') {
        j += 1;
    }
    if j < n && ctx.tok(j).is_ident("mut") {
        j += 1;
    }
    let mut parts = Vec::new();
    while j < n {
        let t = ctx.tok(j);
        if t.kind == TokenKind::Ident {
            parts.push(t.text.clone());
            j += 1;
            if j < n && ctx.tok(j).is_punct('.') {
                j += 1;
                continue;
            }
            break;
        }
        return None;
    }
    if j >= n || !ctx.tok(j).is_punct(')') || parts.is_empty() {
        return None;
    }
    Some(parts.join("."))
}

/// After the acquisition at `si`, does the guard survive the statement?
/// (Same rule as AL004: only trailing `unwrap`-family calls keep it.)
fn guard_survives(ctx: &FileCtx, si: usize) -> bool {
    // Find the end of this call: name [args] `)`.
    let n = ctx.sig.len();
    let mut j = si + 1;
    if j >= n || !ctx.tok(j).is_punct('(') {
        return false;
    }
    let mut depth = 1i32;
    j += 1;
    while j < n && depth > 0 {
        if ctx.tok(j).is_punct('(') {
            depth += 1;
        } else if ctx.tok(j).is_punct(')') {
            depth -= 1;
        }
        j += 1;
    }
    loop {
        let Some(t) = (j < n).then(|| ctx.tok(j)) else {
            return true;
        };
        if t.is_punct(';') {
            return true;
        }
        let unwrapish = t.is_punct('.')
            && (j + 1 < n)
            && ctx.tok(j + 1).kind == TokenKind::Ident
            && (ctx.tok(j + 1).text.starts_with("unwrap") || ctx.tok(j + 1).text == "expect");
        if !unwrapish {
            return false;
        }
        j += 2;
        if j >= n || !ctx.tok(j).is_punct('(') {
            return false;
        }
        let mut d = 1i32;
        j += 1;
        while j < n && d > 0 {
            if ctx.tok(j).is_punct('(') {
                d += 1;
            } else if ctx.tok(j).is_punct(')') {
                d -= 1;
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn summary(src: &str) -> FileSummary {
        let toks = lex(src);
        let ctx = FileCtx::new("crates/x/src/a.rs", &toks);
        summarize(&ctx, src)
    }

    #[test]
    fn extracts_fns_methods_and_visibility() {
        let s = summary(
            r#"
            pub fn free(x: u32) -> u32 { x }
            struct S { v: Vec<u32> }
            impl S {
                pub fn m(&self) -> u32 { self.helper() }
                fn helper(&self) -> u32 { 1 }
            }
            "#,
        );
        assert_eq!(s.functions.len(), 3);
        assert!(s.functions[0].is_pub && s.functions[0].self_type.is_none());
        assert_eq!(s.functions[1].self_type.as_deref(), Some("S"));
        assert!(s.functions[1].has_self);
        assert!(!s.functions[2].is_pub);
        assert_eq!(s.functions[1].calls.len(), 1);
        assert_eq!(s.functions[1].calls[0].recv, RecvHint::SelfType);
    }

    #[test]
    fn panic_sites_include_closures() {
        let s = summary(
            r#"
            fn runs_workers(xs: &[u32]) {
                std::thread::scope(|sc| {
                    sc.spawn(|| xs.first().unwrap());
                });
            }
            "#,
        );
        let f = &s.functions[0];
        assert_eq!(f.panics.len(), 1);
        assert_eq!(f.panics[0].what, ".unwrap()");
    }

    #[test]
    fn nested_fn_sites_are_not_double_counted() {
        let s = summary(
            r#"
            fn outer() {
                fn inner(v: &[u32]) -> u32 { v.first().unwrap() }
                inner(&[1]);
            }
            "#,
        );
        let outer = s.functions.iter().find(|f| f.name == "outer").unwrap();
        let inner = s.functions.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.panics.is_empty());
        assert_eq!(inner.panics.len(), 1);
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
    }

    #[test]
    fn receiver_types_from_params_lets_and_ctors() {
        let s = summary(
            r#"
            fn f(idx: QueryIndex) {
                idx.lookup();
                let t: Tensor = make();
                t.shape();
                let k = TopK::new(5);
                k.push();
            }
            "#,
        );
        let calls = &s.functions[0].calls;
        let recv = |name: &str| {
            calls
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.recv.clone())
                .unwrap()
        };
        assert_eq!(recv("lookup"), RecvHint::Known("QueryIndex".into()));
        assert_eq!(recv("shape"), RecvHint::Known("Tensor".into()));
        assert_eq!(recv("push"), RecvHint::Known("TopK".into()));
    }

    #[test]
    fn lock_fields_and_acquisition_order() {
        let s = summary(
            r#"
            struct Pair { a: RwLock<u32>, b: Mutex<u32> }
            impl Pair {
                fn ab(&self) {
                    let ga = self.a.read();
                    let gb = self.b.lock();
                    use_both(&ga, &gb);
                }
            }
            "#,
        );
        let st = &s.structs[0];
        assert_eq!(st.fields.len(), 2);
        assert!(st.fields.iter().all(|(_, _, is_lock)| *is_lock));
        let f = &s.functions[0];
        assert_eq!(f.locks.len(), 2);
        assert_eq!(f.locks[0].chain, "<Self>.a");
        assert!(f.locks[0].held.is_empty());
        assert_eq!(f.locks[1].chain, "<Self>.b");
        assert_eq!(f.locks[1].held, vec!["<Self>.a".to_string()]);
    }

    #[test]
    fn helper_mediated_locks_are_seen() {
        let s = summary(
            r#"
            struct P { value: RwLock<u32> }
            impl P {
                fn get(&self) -> u32 {
                    let g = read_lock(&self.value);
                    *g
                }
            }
            "#,
        );
        let f = &s.functions[0];
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].chain, "<Self>.value");
    }

    #[test]
    fn calls_record_held_locks() {
        let s = summary(
            r#"
            struct P { m: Mutex<u32> }
            impl P {
                fn f(&self) {
                    let g = self.m.lock();
                    helper();
                }
            }
            "#,
        );
        let f = &s.functions[0];
        let call = f.calls.iter().find(|c| c.name == "helper").unwrap();
        assert_eq!(call.held, vec!["<Self>.m".to_string()]);
    }

    #[test]
    fn clock_reads_found() {
        let s = summary("fn t() -> Instant { let a = Instant::now(); a }");
        assert_eq!(s.functions[0].clock_reads.len(), 1);
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let s = summary("trait T { fn required(&self) -> u32; fn given(&self) -> u32 { 1 } }");
        assert_eq!(s.functions.len(), 1);
        assert_eq!(s.functions[0].name, "given");
    }
}
