//! End-to-end integration: run the whole construction pipeline on a tiny
//! world and verify the resulting concept net supports the paper's
//! downstream applications (§8).

use alicoco::coverage::{evaluate, CpvVocabulary, FullVocabulary};
use alicoco::Stats;
use alicoco_corpus::{Dataset, Oracle};
use alicoco_mining::congen::ClassifierConfig;
use alicoco_mining::hypernym::ProjectionConfig;
use alicoco_mining::matching::OursConfig;
use alicoco_mining::pipeline::{build_alicoco, PipelineConfig};
use alicoco_mining::tagging::TaggerConfig;
use alicoco_mining::vocab_mining::VocabMinerConfig;

/// The pipeline build is expensive; share one across all tests in this
/// binary (they only read it).
fn build() -> &'static (Dataset, alicoco::AliCoCo) {
    static BUILT: std::sync::OnceLock<(Dataset, alicoco::AliCoCo)> = std::sync::OnceLock::new();
    BUILT.get_or_init(|| {
        let ds = Dataset::tiny();
        let cfg = PipelineConfig {
            miner: VocabMinerConfig {
                train: VocabMinerConfig::default().train.with_epochs(2),
                ..Default::default()
            },
            projection: ProjectionConfig {
                train: ProjectionConfig::default().train.with_epochs(3),
                ..Default::default()
            },
            classifier: ClassifierConfig {
                train: ClassifierConfig::full().train.with_epochs(5),
                ..ClassifierConfig::full()
            },
            tagger: TaggerConfig {
                train: TaggerConfig::full().train.with_epochs(2),
                ..TaggerConfig::full()
            },
            matcher: OursConfig {
                train: OursConfig::default().train.with_epochs(1),
                ..Default::default()
            },
            pattern_candidates: 150,
            item_candidates: 15,
            ..Default::default()
        };
        let (kg, _) = build_alicoco(&ds, &cfg);
        (ds, kg)
    })
}

#[test]
fn full_pipeline_supports_applications() {
    let (ds, kg) = build();
    let stats = Stats::compute(kg);

    // The four layers exist and are interlinked (§2).
    assert!(stats.num_classes > 20);
    assert!(stats.num_primitives > 200);
    assert!(stats.num_concepts > 10);
    assert_eq!(stats.num_items, ds.items.len());
    assert!(stats.item_primitive_links > 500);
    assert!(stats.item_concept_links > 50);
    assert!(stats.concept_primitive_links > 10);
    assert!(
        stats.item_linkage > 0.9,
        "items should be linked to the net: {}",
        stats.item_linkage
    );

    // §7.1: the full vocabulary covers user queries better than the CPV
    // baseline ontology.
    let queries: Vec<Vec<String>> = ds.corpora.queries.iter().take(500).cloned().collect();
    let full = evaluate(&FullVocabulary::new(kg), &queries);
    let cpv = evaluate(
        &CpvVocabulary::new(kg, &["Category", "Brand", "Color", "Material"]),
        &queries,
    );
    assert!(
        full.word_coverage > cpv.word_coverage + 0.1,
        "coverage gap missing: full {} vs cpv {}",
        full.word_coverage,
        cpv.word_coverage
    );

    // §8.1: semantic search — some concept has suggested items, all weighted
    // as probabilities, sorted descending.
    let concept_with_items = kg
        .concept_ids()
        .find(|&c| kg.concept(c).items.len() >= 2)
        .expect("a concept with items");
    let items = kg.items_for_concept(concept_with_items);
    for w in items.windows(2) {
        assert!(w[0].1 >= w[1].1, "items not sorted by weight");
    }
    for &(_, w) in &items {
        assert!((0.0..=1.0).contains(&w));
    }

    // §8.2: cognitive recommendation — reverse lookup works.
    let (item, _) = items[0];
    assert!(kg.concepts_for_item(item).contains(&concept_with_items));
}

#[test]
fn admitted_concepts_are_interpreted_and_mostly_plausible() {
    let (ds, kg) = build();
    let oracle = Oracle::new(&ds.world);
    let mut good = 0;
    let mut with_primitives = 0;
    let mut total = 0;
    for c in kg.concept_ids() {
        let node = kg.concept(c);
        total += 1;
        if !node.primitives.is_empty() {
            with_primitives += 1;
        }
        let tokens: Vec<String> = node.name.split(' ').map(String::from).collect();
        if oracle.label_concept(&tokens) {
            good += 1;
        }
    }
    assert!(total > 10);
    assert!(
        with_primitives as f64 / total as f64 > 0.8,
        "most concepts must be linked to primitives: {with_primitives}/{total}"
    );
    assert!(
        good as f64 / total as f64 > 0.6,
        "admitted concept precision too low: {good}/{total}"
    );
}

#[test]
fn snapshot_roundtrip_preserves_the_built_net() {
    let (_, kg) = build();
    let mut buf = Vec::new();
    alicoco::snapshot::save(kg, &mut buf).expect("save");
    let loaded = alicoco::snapshot::load(&mut buf.as_slice()).expect("load");
    let a = Stats::compute(kg);
    let b = Stats::compute(&loaded);
    assert_eq!(a.num_classes, b.num_classes);
    assert_eq!(a.num_primitives, b.num_primitives);
    assert_eq!(a.num_concepts, b.num_concepts);
    assert_eq!(a.num_items, b.num_items);
    assert_eq!(a.total_relations(), b.total_relations());
    assert_eq!(a.per_domain, b.per_domain);
}

#[test]
fn built_net_is_structurally_valid_and_serves_applications() {
    let (_, kg) = build();
    // The construction pipeline must emit a consistent graph.
    let violations = alicoco::validate::validate(kg);
    assert!(
        violations.is_empty(),
        "pipeline output invalid: {violations:?}"
    );

    // §8.1 semantic search on the real build.
    let engine = alicoco_apps::SemanticSearch::new(kg, alicoco_apps::SearchConfig::default());
    let stocked = kg
        .concept_ids()
        .find(|&c| !kg.concept(c).items.is_empty())
        .expect("a stocked concept");
    let name = kg.concept(stocked).name.clone();
    let cards = engine.search(&name);
    assert!(!cards.is_empty(), "search cannot find {name:?}");
    assert!(cards.iter().any(|c| c.name == name));

    // §8.2 recommendation on the real build.
    let history: Vec<alicoco::ItemId> = kg
        .item_ids()
        .filter(|&i| !kg.concepts_for_item(i).is_empty())
        .take(2)
        .collect();
    let rec = alicoco_apps::CognitiveRecommender::new(kg, alicoco_apps::RecommendConfig::default());
    let out = rec.recommend(&history);
    assert!(!out.is_empty(), "no recommendations from linked history");
    // Reasons render to non-empty text.
    for r in &out {
        assert!(!r.reason.text(kg, &r.name).is_empty());
    }

    // Query-index explanations agree with the stored edges.
    let qi = alicoco::query::QueryIndex::build(kg);
    let (item, w) = kg.items_for_concept(stocked)[0];
    let e = qi.explain_suggestion(stocked, item);
    assert_eq!(e.direct_weight, Some(w));
}

#[test]
fn implied_relations_can_be_mined_from_the_built_net() {
    // §10 future work 1: association rules over concept -> primitive links.
    let (_, kg) = build();
    let rules = alicoco::infer::mine_implications(
        kg,
        &alicoco::infer::InferConfig {
            min_support: 2,
            min_confidence: 0.5,
            min_lift: 1.2,
        },
    );
    // The tiny build may or may not surface rules; the contract is that all
    // returned rules satisfy the thresholds and cross class boundaries.
    for r in &rules {
        assert!(r.support >= 2);
        assert!(r.confidence >= 0.5);
        assert!(r.lift >= 1.2);
        assert_ne!(
            kg.primitive(r.antecedent).class,
            kg.primitive(r.consequent).class
        );
    }
}
