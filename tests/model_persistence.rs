//! Trained models must persist and reload with bit-identical behaviour —
//! the workflow a production deployment of the construction pipeline needs
//! (train once, serve many).

use alicoco_corpus::Dataset;
use alicoco_mining::congen::{classification_splits, ClassifierConfig, ConceptClassifier};
use alicoco_mining::matching::{
    build_matching_dataset, MatchingDataConfig, OursConfig, OursMatcher,
};
use alicoco_mining::resources::{Resources, ResourcesConfig};
use alicoco_mining::vocab_mining::{
    distant_supervision, KnownLexicon, VocabMiner, VocabMinerConfig,
};
use alicoco_nn::persist;
use alicoco_nn::util::seeded_rng;

fn setup() -> (Dataset, Resources) {
    let ds = Dataset::tiny();
    let res = Resources::build(&ds, ResourcesConfig::default());
    (ds, res)
}

#[test]
fn classifier_roundtrips_through_persistence() {
    let (ds, res) = setup();
    let mut rng = seeded_rng(1);
    let (train, _, test) = classification_splits(&ds, &mut rng);
    let mut trained = ConceptClassifier::new(
        &res,
        ClassifierConfig {
            train: ClassifierConfig::full().train.with_epochs(2),
            ..ClassifierConfig::full()
        },
    );
    trained.train(&res, &train, &mut rng);
    let mut buf = Vec::new();
    persist::save(trained.params(), &mut buf).expect("save");

    // A fresh model with a *different* seed scores differently...
    let fresh = ConceptClassifier::new(
        &res,
        ClassifierConfig {
            train: ClassifierConfig::full().train.with_epochs(2),
            seed: 999,
            ..ClassifierConfig::full()
        },
    );
    let probe = &test[0].0;
    assert_ne!(trained.score(&res, probe), fresh.score(&res, probe));
    // ...until the trained weights are loaded.
    persist::load(fresh.params(), &mut buf.as_slice()).expect("load");
    for (tokens, _) in test.iter().take(20) {
        assert_eq!(
            trained.score(&res, tokens),
            fresh.score(&res, tokens),
            "{tokens:?}"
        );
    }
}

#[test]
fn miner_roundtrips_through_persistence() {
    let (ds, res) = setup();
    let mut rng = seeded_rng(2);
    let (known, _) = KnownLexicon::sample(&ds, 0.7, &mut rng);
    let sentences: Vec<Vec<String>> = ds.corpora.all_sentences().cloned().collect();
    let data = distant_supervision(&known, &sentences, 150);
    let mut trained = VocabMiner::new(
        &res,
        VocabMinerConfig {
            train: VocabMinerConfig::default().train.with_epochs(1),
            ..Default::default()
        },
    );
    trained.train(&res, &data, &mut rng);
    let mut buf = Vec::new();
    persist::save(trained.params(), &mut buf).expect("save");

    let fresh = VocabMiner::new(
        &res,
        VocabMinerConfig {
            seed: 31337,
            ..Default::default()
        },
    );
    persist::load(fresh.params(), &mut buf.as_slice()).expect("load");
    for sent in sentences.iter().take(20) {
        assert_eq!(trained.tag(&res, sent), fresh.tag(&res, sent));
    }
}

#[test]
fn matcher_roundtrips_through_persistence() {
    let (ds, res) = setup();
    let mut rng = seeded_rng(3);
    let data = build_matching_dataset(&ds, &MatchingDataConfig::default());
    let mut trained = OursMatcher::new(
        &res,
        OursConfig {
            train: OursConfig::default().train.with_epochs(1),
            ..Default::default()
        },
    );
    trained.train(&res, &data, &mut rng);
    let mut buf = Vec::new();
    persist::save(trained.params(), &mut buf).expect("save");

    let fresh = OursMatcher::new(
        &res,
        OursConfig {
            seed: 4242,
            ..Default::default()
        },
    );
    persist::load(fresh.params(), &mut buf.as_slice()).expect("load");
    for &(c, i, _) in data.test.iter().take(20) {
        assert_eq!(
            trained.score(&res, &data, c, i),
            fresh.score(&res, &data, c, i),
            "pair ({c},{i})"
        );
    }
}

#[test]
fn mismatched_architectures_are_rejected() {
    let (_, res) = setup();
    let small = ConceptClassifier::new(
        &res,
        ClassifierConfig {
            word_hidden: 8,
            ..ClassifierConfig::full()
        },
    );
    let big = ConceptClassifier::new(
        &res,
        ClassifierConfig {
            word_hidden: 16,
            ..ClassifierConfig::full()
        },
    );
    let mut buf = Vec::new();
    persist::save(small.params(), &mut buf).expect("save");
    let err = persist::load(big.params(), &mut buf.as_slice()).unwrap_err();
    assert!(
        matches!(err, persist::LoadError::ShapeMismatch { .. }),
        "got {err:?}"
    );
}
