//! Cross-crate integration tests: the contracts between the synthetic world,
//! the text substrate, the models, and the graph.

use alicoco_corpus::{concept_relevant_item, judge_tokens, Dataset, Domain, Oracle};
use alicoco_mining::resources::{Resources, ResourcesConfig};
use alicoco_text::hearst;

fn dataset() -> Dataset {
    Dataset::tiny()
}

#[test]
fn oracle_judge_and_generator_agree_on_every_concept() {
    // The oracle judges arbitrary token sequences by re-parsing them; the
    // generator labels concepts at construction. They must agree or the
    // entire evaluation is unsound.
    let ds = dataset();
    for c in &ds.concepts {
        assert_eq!(
            judge_tokens(&ds.world, &c.tokens),
            c.good,
            "generator/judge disagree on {:?} ({:?})",
            c.text(),
            c.defect
        );
    }
}

#[test]
fn paper_motivating_examples_work_against_the_world() {
    let ds = dataset();
    let w = &ds.world;
    let s = |x: &str| x.to_string();
    // "outdoor barbecue" — the paper's running example.
    assert!(judge_tokens(w, &[s("outdoor"), s("barbecue")]));
    // "indoor barbecue" — the §5.2.1 example of a *combination* concept that
    // is rarely mined from text; in our world barbecue is outdoor-only, so
    // it must be implausible.
    assert!(!judge_tokens(w, &[s("indoor"), s("barbecue")]));
    // "warm hat for traveling" good / "warm shoes for swimming" bad.
    assert!(judge_tokens(
        w,
        &[s("warm"), s("hat"), s("for"), s("traveling")]
    ));
    assert!(!judge_tokens(
        w,
        &[s("warm"), s("boots"), s("for"), s("swimming")]
    ));
    // "christmas gifts for grandpa".
    assert!(judge_tokens(
        w,
        &[s("christmas"), s("gifts"), s("for"), s("grandpa")]
    ));
    // Scrambled word order is incoherent.
    assert!(!judge_tokens(
        w,
        &[s("for"), s("grandpa"), s("christmas"), s("gifts")]
    ));
    // "blue sky" has no e-commerce meaning.
    assert!(!judge_tokens(w, &[s("blue"), s("sky")]));
}

#[test]
fn hearst_extraction_on_generated_guides_matches_taxonomy() {
    let ds = dataset();
    let refs: Vec<&[String]> = ds.corpora.guides.iter().map(|v| v.as_slice()).collect();
    let pairs = hearst::extract_from_corpus(refs.iter().copied());
    assert!(pairs.len() > 20);
    let resolve = |n: &str| {
        ds.world
            .category(n)
            .or_else(|| ds.world.category(&n.replace('-', " ")))
    };
    let mut ok = 0;
    let mut total = 0;
    for p in &pairs {
        if let (Some(c), Some(h)) = (resolve(&p.hyponym), resolve(&p.hypernym)) {
            total += 1;
            if ds.world.tree.is_ancestor(h, c) {
                ok += 1;
            }
        }
    }
    assert!(total > 10);
    assert!(ok as f64 / total as f64 > 0.9);
}

#[test]
fn resources_tie_the_world_to_the_models() {
    let ds = dataset();
    let res = Resources::build(&ds, ResourcesConfig::default());
    // NER labels round-trip through the domain indices used by the miners.
    for (surface, domain) in ds.world.lexicon.all_terms() {
        let tag = res.ner.tag(surface);
        if tag != 0 {
            // Ambiguous surfaces keep one tag; it must be a *valid* domain
            // for the surface. Category is always admissible because tokens
            // of multi-word category names ("face cream") are tagged too.
            let d = Domain::from_index(tag - 1);
            assert!(
                d == Domain::Category || ds.world.lexicon.domains_of(surface).contains(&d),
                "NER tag for {surface} is not a valid domain"
            );
        }
        let _ = domain;
    }
    // Every concept token has a finite perplexity and a gloss-or-zero.
    for c in ds.concepts.iter().take(50) {
        assert!(res.perplexity(&c.tokens).is_finite());
        for t in &c.tokens {
            let v = res.gloss_vector(t);
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }
}

#[test]
fn gloss_similarity_reflects_world_compatibility() {
    // The knowledge signal the models rely on: compatible pairs must score
    // clearly above incompatible ones, in aggregate.
    let ds = dataset();
    let res = Resources::build(&ds, ResourcesConfig::default());
    let compatible = [
        ("warm", "skiing"),
        ("waterproof", "hiking"),
        ("non-stick", "baking"),
        ("outdoor", "barbecue"),
        ("health-care", "elders"),
    ];
    let incompatible = [
        ("warm", "swimming"),
        ("waterproof", "lipstick"),
        ("classroom", "bathing"),
        ("health-care", "runners"),
        ("non-stick", "skiing"),
    ];
    let avg = |pairs: &[(&str, &str)]| {
        pairs
            .iter()
            .map(|&(a, b)| res.gloss_similarity(a, b) as f64)
            .sum::<f64>()
            / pairs.len() as f64
    };
    let pos = avg(&compatible);
    let neg = avg(&incompatible);
    assert!(
        pos > neg + 0.05,
        "gloss similarity uninformative: pos {pos} vs neg {neg}"
    );
}

#[test]
fn relevance_ground_truth_is_consistent_with_oracle() {
    let ds = dataset();
    let oracle = Oracle::new(&ds.world);
    let mut checked = 0;
    for c in ds.concepts.iter().filter(|c| c.good).take(10) {
        for item in ds.items.iter().take(30) {
            let direct = concept_relevant_item(&ds.world, c, item);
            assert_eq!(direct, oracle.label_relevance(c, item));
            checked += 1;
        }
    }
    assert!(checked > 0);
    assert_eq!(oracle.labels_used(), checked);
}

#[test]
fn deterministic_dataset_generation_across_calls() {
    let a = Dataset::tiny();
    let b = Dataset::tiny();
    assert_eq!(a.items.len(), b.items.len());
    for (x, y) in a.items.iter().zip(&b.items) {
        assert_eq!(x.title, y.title);
    }
    for (x, y) in a.concepts.iter().zip(&b.concepts) {
        assert_eq!(x.tokens, y.tokens);
        assert_eq!(x.good, y.good);
    }
}

#[test]
fn word2vec_learns_event_gear_proximity() {
    // The reviews tie events to their gear; embeddings must reflect it at
    // least directionally for the projection model to work.
    let ds = dataset();
    let res = Resources::build(
        &ds,
        ResourcesConfig {
            word_epochs: 5,
            ..Default::default()
        },
    );
    let sim = |a: &str, b: &str| {
        let (Some(x), Some(y)) = (res.vocab.get(a), res.vocab.get(b)) else {
            return 0.0;
        };
        res.word_vectors.cosine(x, y)
    };
    let related = sim("barbecue", "grill");
    let unrelated = sim("barbecue", "lipstick");
    assert!(
        related > unrelated,
        "embeddings uninformative: barbecue~grill {related} vs barbecue~lipstick {unrelated}"
    );
}
