//! Property-based tests (proptest) over the core invariants: snapshot
//! round-tripping for arbitrary graphs, CRF decoding optimality, metric
//! bounds, segmentation coverage, and coverage-evaluator bounds.

use alicoco::{AliCoCo, Stats};
use alicoco_nn::crf::Crf;
use alicoco_nn::metrics::{average_precision, precision_at_k, reciprocal_rank, roc_auc};
use alicoco_nn::{ParamSet, Tensor};
use alicoco_text::segment::MaxMatchSegmenter;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Arbitrary small graphs -> snapshot roundtrip
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct GraphSpec {
    classes: usize,
    primitives: Vec<(u8, u8)>, // (name id, class index)
    concepts: usize,
    items: Vec<bool>, // per item: does it get an EMPTY title?
    prim_is_a: Vec<(u8, u8)>,
    concept_prims: Vec<(u8, u8)>,
    concept_items: Vec<(u8, u8, u8)>, // weight in 0..=100 (0 is legal)
}

fn graph_strategy() -> impl Strategy<Value = GraphSpec> {
    (
        2usize..6,
        prop::collection::vec((0u8..20, 0u8..5), 1..15),
        1usize..6,
        prop::collection::vec(any::<bool>(), 1..8),
        prop::collection::vec((0u8..15, 0u8..15), 0..10),
        prop::collection::vec((0u8..6, 0u8..15), 0..10),
        prop::collection::vec((0u8..6, 0u8..8, 0u8..=100), 0..10),
    )
        .prop_map(
            |(classes, primitives, concepts, items, prim_is_a, concept_prims, concept_items)| {
                GraphSpec {
                    classes,
                    primitives,
                    concepts,
                    items,
                    prim_is_a,
                    concept_prims,
                    concept_items,
                }
            },
        )
}

fn build_graph(spec: &GraphSpec) -> AliCoCo {
    let mut kg = AliCoCo::new();
    let root = kg.add_class("root", None);
    let mut classes = vec![root];
    for i in 0..spec.classes {
        classes.push(kg.add_class(&format!("class{i}"), Some(root)));
    }
    let mut prims = Vec::new();
    for &(name, class) in &spec.primitives {
        let class = classes[(class as usize) % classes.len()];
        prims.push(kg.add_primitive(&format!("prim{name}"), class));
    }
    let mut concepts = Vec::new();
    for i in 0..spec.concepts {
        concepts.push(kg.add_concept(&format!("concept {i}")));
    }
    let mut items = Vec::new();
    for (i, &empty_title) in spec.items.iter().enumerate() {
        let title: Vec<String> = if empty_title {
            Vec::new()
        } else {
            vec![format!("item{i}"), "title".to_string()]
        };
        items.push(kg.add_item(&title));
    }
    for &(a, b) in &spec.prim_is_a {
        let a = prims[(a as usize) % prims.len()];
        let b = prims[(b as usize) % prims.len()];
        if a != b {
            kg.add_primitive_is_a(a, b);
        }
    }
    for &(c, p) in &spec.concept_prims {
        let c = concepts[(c as usize) % concepts.len()];
        let p = prims[(p as usize) % prims.len()];
        kg.link_concept_primitive(c, p);
    }
    for &(c, i, w) in &spec.concept_items {
        let c = concepts[(c as usize) % concepts.len()];
        let i = items[(i as usize) % items.len()];
        kg.link_concept_item(c, i, w as f32 / 100.0);
    }
    kg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshot_roundtrip_any_graph(spec in graph_strategy()) {
        let kg = build_graph(&spec);
        let mut buf = Vec::new();
        alicoco::snapshot::save(&kg, &mut buf).unwrap();
        let loaded = alicoco::snapshot::load(&mut buf.as_slice()).unwrap();
        let a = Stats::compute(&kg);
        let b = Stats::compute(&loaded);
        prop_assert_eq!(a.num_classes, b.num_classes);
        prop_assert_eq!(a.num_primitives, b.num_primitives);
        prop_assert_eq!(a.num_concepts, b.num_concepts);
        prop_assert_eq!(a.num_items, b.num_items);
        prop_assert_eq!(a.total_relations(), b.total_relations());
        // Exact node/edge payloads survive: item titles (including empty
        // ones) and concept->item weights (including 0.0).
        for i in kg.item_ids() {
            prop_assert_eq!(&kg.item(i).title, &loaded.item(i).title);
        }
        for c in kg.concept_ids() {
            prop_assert_eq!(&kg.concept(c).items, &loaded.concept(c).items);
        }
        // Saving again yields identical bytes (canonical form).
        let mut buf2 = Vec::new();
        alicoco::snapshot::save(&loaded, &mut buf2).unwrap();
        prop_assert_eq!(buf, buf2);
    }

    #[test]
    fn storage_backends_are_byte_and_structure_equivalent(spec in graph_strategy()) {
        use alicoco::store::{BinaryStore, Store, TsvStore};
        let kg = build_graph(&spec);

        // TSV -> binary -> TSV reproduces the oracle bytes exactly.
        let mut tsv_bytes = Vec::new();
        TsvStore.save(&kg, &mut tsv_bytes).unwrap();
        let mut bin_bytes = Vec::new();
        BinaryStore.save(&kg, &mut bin_bytes).unwrap();
        let via_binary = BinaryStore.load(&bin_bytes).unwrap();
        let mut tsv_again = Vec::new();
        TsvStore.save(&via_binary, &mut tsv_again).unwrap();
        prop_assert_eq!(&tsv_bytes, &tsv_again);

        // Binary re-save is canonical too.
        let mut bin_again = Vec::new();
        BinaryStore.save(&via_binary, &mut bin_again).unwrap();
        prop_assert_eq!(&bin_bytes, &bin_again);

        // Binary-loaded graph is structurally identical to TSV-loaded.
        // (The *original* kg may order derived adjacency — hyponyms,
        // item->concepts — by arbitrary call order; both loads normalize
        // to the canonical stream order, so they must agree with each
        // other exactly and with the original through stats.)
        let via_tsv = TsvStore.load(&tsv_bytes).unwrap();
        prop_assert_eq!(&via_tsv, &via_binary);

        // Both backends agree through the stats pipeline.
        let expect = Stats::compute(&kg);
        prop_assert_eq!(&TsvStore.stats(&tsv_bytes).unwrap(), &expect);
        prop_assert_eq!(&BinaryStore.stats(&bin_bytes).unwrap(), &expect);
    }

    #[test]
    fn primitive_ancestors_never_contains_self_and_terminates(spec in graph_strategy()) {
        let kg = build_graph(&spec);
        for p in kg.primitive_ids() {
            let anc = kg.primitive_ancestors(p);
            // Cycles are representable (a isA b, b isA a) but the closure
            // must terminate and dedupe.
            let mut sorted = anc.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), anc.len(), "ancestors contain duplicates");
        }
    }

    #[test]
    fn items_for_concept_sorted_and_bounded(spec in graph_strategy()) {
        let kg = build_graph(&spec);
        for c in kg.concept_ids() {
            let items = kg.items_for_concept(c);
            for w in items.windows(2) {
                prop_assert!(w[0].1 >= w[1].1);
            }
            for &(_, weight) in &items {
                prop_assert!((0.0..=1.0).contains(&weight));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// CRF decoding optimality on random emissions
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn viterbi_beats_random_paths(
        emissions in prop::collection::vec(prop::collection::vec(-3.0f32..3.0, 3), 1..5),
        seed in 0u64..1000,
    ) {
        let mut rng = alicoco_nn::util::seeded_rng(seed);
        let mut ps = ParamSet::new();
        let crf = Crf::new(&mut ps, "crf", 3, &mut rng);
        let t = emissions.len();
        let flat: Vec<f32> = emissions.iter().flatten().copied().collect();
        let em = Tensor::from_vec(t, 3, flat);
        let decoded = crf.decode(&em);
        prop_assert_eq!(decoded.len(), t);
        let best = crf.path_score(&em, &decoded);
        // Any random path scores no better.
        use rand::Rng as _;
        for _ in 0..20 {
            let path: Vec<usize> = (0..t).map(|_| rng.gen_range(0..3)).collect();
            prop_assert!(crf.path_score(&em, &path) <= best + 1e-4);
        }
        // And the partition dominates the best path (log-sum-exp >= max).
        prop_assert!(crf.log_partition(&em) >= best - 1e-4);
    }
}

// ---------------------------------------------------------------------------
// Metric bounds
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ranking_metrics_are_bounded(
        scored in prop::collection::vec((-10.0f32..10.0, any::<bool>()), 1..40)
    ) {
        let auc = roc_auc(&scored);
        prop_assert!((0.0..=1.0).contains(&auc), "auc {auc}");
        let ap = average_precision(&scored);
        prop_assert!((0.0..=1.0).contains(&ap));
        let rr = reciprocal_rank(&scored);
        prop_assert!((0.0..=1.0).contains(&rr));
        for k in 1..5 {
            let p = precision_at_k(&scored, k);
            prop_assert!((0.0..=1.0).contains(&p));
        }
        // AP and RR agree on emptiness of relevance.
        let has_rel = scored.iter().any(|&(_, y)| y);
        prop_assert_eq!(ap > 0.0, has_rel);
        prop_assert_eq!(rr > 0.0, has_rel);
    }

    #[test]
    fn auc_is_complement_under_label_flip(
        scored in prop::collection::vec((-5.0f32..5.0, any::<bool>()), 2..30)
    ) {
        let pos = scored.iter().filter(|(_, y)| *y).count();
        prop_assume!(pos > 0 && pos < scored.len());
        // Distinct scores only (ties make the complement inexact).
        let mut scores: Vec<f32> = scored.iter().map(|&(s, _)| s).collect();
        scores.sort_by(f32::total_cmp);
        scores.dedup();
        prop_assume!(scores.len() == scored.len());
        let auc = roc_auc(&scored);
        let flipped: Vec<(f32, bool)> = scored.iter().map(|&(s, y)| (s, !y)).collect();
        let auc_f = roc_auc(&flipped);
        prop_assert!((auc + auc_f - 1.0).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Segmentation properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn segmentation_reconstructs_input(
        entries in prop::collection::vec("[a-c]{1,3}", 1..8),
        text in "[a-d]{0,12}",
    ) {
        let seg = MaxMatchSegmenter::from_entries(entries.iter().map(String::as_str));
        let parts = seg.segment(&text);
        let rebuilt: String = parts.iter().map(|s| s.text.as_str()).collect::<String>();
        prop_assert_eq!(rebuilt, text.clone());
        // Every in-lexicon segment is truly in the lexicon.
        for p in &parts {
            if p.in_lexicon {
                prop_assert!(seg.contains(&p.text));
            }
        }
        // Perfect match implies every char covered by lexicon entries.
        if seg.matches_perfectly(&text) {
            prop_assert!(parts.iter().all(|p| p.in_lexicon));
        }
    }

    #[test]
    fn concatenated_entries_match_perfectly(
        entries in prop::collection::vec("[a-c]{1,3}", 1..6),
        picks in prop::collection::vec(0usize..6, 1..5),
    ) {
        let seg = MaxMatchSegmenter::from_entries(entries.iter().map(String::as_str));
        let text: String = picks.iter().map(|&i| entries[i % entries.len()].clone()).collect();
        prop_assert!(seg.matches_perfectly(&text), "failed on {text:?} from {entries:?}");
    }
}
