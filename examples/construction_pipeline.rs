//! A guided walk through the five construction modules (§4–§6), printing
//! what each stage learns and how the oracle gates quality — the
//! "semi-automatic" loop of the paper, end to end.
//!
//! ```sh
//! cargo run --release -p alicoco-suite --example construction_pipeline
//! ```

use alicoco_corpus::{Dataset, Oracle};
use alicoco_mining::congen::{classification_splits, ClassifierConfig, ConceptClassifier};
use alicoco_mining::hypernym::{
    pattern_based_pairs, run_active_learning, ActiveLearningConfig, HypernymDataset, Strategy,
};
use alicoco_mining::matching::{
    build_matching_dataset, evaluate_matcher, MatchingDataConfig, OursConfig, OursMatcher,
};
use alicoco_mining::resources::{Resources, ResourcesConfig};
use alicoco_mining::tagging::{
    distant_tagging_examples, tagging_splits, AmbiguityIndex, ConceptTagger, ContextIndex,
    TaggerConfig,
};
use alicoco_mining::vocab_mining::{
    corpus_surfaces, distant_supervision, mine_candidates, verify_candidates, KnownLexicon,
    VocabMiner, VocabMinerConfig,
};
use alicoco_nn::util::seeded_rng;

fn main() {
    let ds = Dataset::tiny();
    let res = Resources::build(&ds, ResourcesConfig::default());
    let oracle = Oracle::new(&ds.world);
    let mut rng = seeded_rng(2020);

    // ---- §4.1 vocabulary mining -----------------------------------------
    println!("== §4.1 vocabulary mining (BiLSTM-CRF + distant supervision) ==");
    let (known, heldout) = KnownLexicon::sample(&ds, 0.7, &mut rng);
    println!(
        "known vocabulary: {} surfaces; held out: {}",
        known.len(),
        heldout.len()
    );
    let sentences: Vec<Vec<String>> = ds.corpora.all_sentences().cloned().collect();
    let train = distant_supervision(&known, &sentences, 600);
    println!("perfectly-matched training sentences: {}", train.len());
    let mut miner = VocabMiner::new(
        &res,
        VocabMinerConfig {
            train: VocabMinerConfig::default().train.with_epochs(3),
            ..Default::default()
        },
    );
    miner.train(&res, &train, &mut rng);
    let cands = mine_candidates(&miner, &res, &known, &sentences);
    let (accepted, report) =
        verify_candidates(&cands, &oracle, &heldout, &corpus_surfaces(&sentences));
    println!(
        "mined {} candidates; oracle accepted {} (precision {:.2}, held-out recall {:.2})",
        report.candidates, report.accepted, report.precision, report.heldout_recall
    );
    for c in accepted.iter().take(5) {
        println!(
            "  new primitive: <{}: {}> (seen {} times)",
            c.domain.name(),
            c.surface,
            c.count
        );
    }

    // ---- §4.2 hypernym discovery ------------------------------------------
    println!("\n== §4.2 hypernym discovery (patterns + projection + UCS) ==");
    let pairs = pattern_based_pairs(&ds);
    println!(
        "pattern-based isA pairs (Hearst + head-word): {}",
        pairs.len()
    );
    for (c, h) in pairs.iter().take(3) {
        println!("  {c} isA {h}");
    }
    let data = HypernymDataset::build(&ds, &res, &mut rng);
    let out = run_active_learning(
        &data,
        &oracle,
        &ActiveLearningConfig {
            strategy: Strategy::Ucs { alpha: 0.5 },
            k_per_round: 200,
            max_rounds: 5,
            ..Default::default()
        },
    );
    println!(
        "UCS active learning: {} oracle labels, best val MAP {:.3}, test MAP {:.3}",
        out.labeled, out.best_val_map, out.test.map
    );

    // ---- §5.2 concept classification ----------------------------------------
    println!("\n== §5.2 e-commerce concept classification (knowledge-enhanced Wide&Deep) ==");
    let (cls_train, _, cls_test) = classification_splits(&ds, &mut rng);
    let mut classifier = ConceptClassifier::new(
        &res,
        ClassifierConfig {
            train: ClassifierConfig::full().train.with_epochs(6),
            ..ClassifierConfig::full()
        },
    );
    classifier.train(&res, &cls_train, &mut rng);
    let m = classifier.evaluate(&res, &cls_test);
    println!(
        "test precision {:.3}, accuracy {:.3}",
        m.precision, m.accuracy
    );
    for probe in [
        vec![
            "warm".to_string(),
            "hat".to_string(),
            "for".to_string(),
            "traveling".to_string(),
        ],
        vec![
            "warm".to_string(),
            "boots".to_string(),
            "for".to_string(),
            "swimming".to_string(),
        ],
    ] {
        println!(
            "  score({}) = {:.3}",
            probe.join(" "),
            classifier.score(&res, &probe)
        );
    }

    // ---- §5.3 concept tagging --------------------------------------------
    println!("\n== §5.3 concept tagging (text-augmented NER + fuzzy CRF) ==");
    let (mut tag_train, _, tag_test) = tagging_splits(&ds, &mut rng);
    tag_train.extend(distant_tagging_examples(&ds, 200, 42));
    let amb = AmbiguityIndex::build(&ds);
    let words: alicoco_nn::util::FxHashSet<String> = tag_train
        .iter()
        .chain(tag_test.iter())
        .flat_map(|e| e.tokens.iter().cloned())
        .collect();
    let ctx = ContextIndex::build(&res, &ds, words.iter().map(String::as_str), 3);
    let mut tagger = ConceptTagger::new(
        &res,
        TaggerConfig {
            train: TaggerConfig::full().train.with_epochs(2),
            ..TaggerConfig::full()
        },
    );
    tagger.train(&res, &ctx, &amb, &tag_train, &mut rng);
    let tm = tagger.evaluate(&res, &ctx, &tag_test);
    println!("span F1 {:.3}", tm.f1);
    let probe: Vec<String> = vec!["village".into(), "skirt".into()];
    let labels = tagger.tag(&res, &ctx, &probe);
    for (start, len, domain) in alicoco_mining::tagging::spans(&labels) {
        println!(
            "  \"{}\" -> <{}: {}>",
            probe.join(" "),
            domain.name(),
            probe[start..start + len].join(" ")
        );
    }

    // ---- §6 item association -----------------------------------------------
    println!("\n== §6 concept-item association (knowledge-aware matching) ==");
    let match_data = build_matching_dataset(&ds, &MatchingDataConfig::default());
    let mut matcher = OursMatcher::new(
        &res,
        OursConfig {
            train: OursConfig::default().train.with_epochs(2),
            ..Default::default()
        },
    );
    matcher.train(&res, &match_data, &mut rng);
    let mm = evaluate_matcher(&match_data, |c, i| matcher.score(&res, &match_data, c, i));
    println!("AUC {:.3}, F1 {:.3}, P@10 {:.3}", mm.auc, mm.f1, mm.p_at_10);
    if let Some((c, cands)) = match_data.queries.first() {
        println!("  concept \"{}\":", match_data.concepts[*c].text());
        let mut scored: Vec<(f32, usize, bool)> = cands
            .iter()
            .map(|&(i, y)| (matcher.score(&res, &match_data, *c, i), i, y))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        for (s, i, y) in scored.iter().take(5) {
            println!(
                "    {:.2} {} {}",
                s,
                if *y { "[relevant]  " } else { "[irrelevant]" },
                match_data.items[*i].title.join(" ")
            );
        }
    }
    println!("\ndone — every stage above feeds `alicoco_mining::pipeline::build_alicoco`.");
}
