//! Quickstart: generate a synthetic e-commerce world, run the full
//! construction pipeline, and query the resulting AliCoCo concept net.
//!
//! ```sh
//! cargo run --release -p alicoco-suite --example quickstart
//! ```

use alicoco::coverage::{evaluate, FullVocabulary};
use alicoco::Stats;
use alicoco_corpus::Dataset;
use alicoco_mining::pipeline::{build_alicoco, PipelineConfig};

fn main() {
    // 1. A deterministic synthetic world (items, corpora, glosses, oracle).
    println!("== generating synthetic e-commerce world ==");
    let ds = Dataset::tiny();
    println!(
        "items: {}, labeled concepts: {}, corpus sentences: {}",
        ds.items.len(),
        ds.concepts.len(),
        ds.corpora.total_sentences()
    );

    // 2. Run the semi-automatic construction pipeline (§2–§6): vocabulary
    //    mining, hypernym discovery, concept generation + classification,
    //    tagging, item association.
    println!("\n== building AliCoCo ==");
    let (kg, report) = build_alicoco(&ds, &PipelineConfig::default());
    println!("pipeline report: {report:#?}");

    // 3. Inspect the net (the Table 2 statistics).
    println!("\n== statistics ==\n{}", Stats::compute(&kg));

    // 4. Query: pick an e-commerce concept and list its suggested items —
    //    the "concept card" of Figure 2.
    println!("== concept cards ==");
    let mut shown = 0;
    for cid in kg.concept_ids() {
        let concept = kg.concept(cid);
        let items = kg.items_for_concept(cid);
        if items.len() >= 3 {
            println!("\n  [{}]", concept.name);
            for pid in &concept.primitives {
                let p = kg.primitive(*pid);
                let domain = kg.class(kg.class_domain(p.class)).name.clone();
                println!("    interpreted by <{}: {}>", domain, p.name);
            }
            for (iid, w) in items.iter().take(3) {
                println!("    item p={:.2}: {}", w, kg.item(*iid).title.join(" "));
            }
            shown += 1;
            if shown >= 3 {
                break;
            }
        }
    }

    // 5. Disambiguation: one surface, several senses.
    println!("\n== disambiguation ==");
    for name in ["village", "mocha"] {
        let senses = kg.primitives_by_name(name);
        let domains: Vec<String> = senses
            .iter()
            .map(|&p| {
                kg.class(kg.class_domain(kg.primitive(p).class))
                    .name
                    .clone()
            })
            .collect();
        println!("  {name:?} has {} sense(s): {domains:?}", senses.len());
    }

    // 6. Coverage of user needs (§7.1).
    let cov = evaluate(&FullVocabulary::new(&kg), &ds.corpora.queries);
    println!(
        "\n== coverage ==\n  word coverage over queries: {:.1}%",
        cov.word_coverage * 100.0
    );

    // 7. Persist and reload.
    let mut buf = Vec::new();
    alicoco::snapshot::save(&kg, &mut buf).expect("snapshot save");
    let reloaded = alicoco::snapshot::load(&mut buf.as_slice()).expect("snapshot load");
    println!(
        "\n== snapshot ==\n  {} bytes; reload has {} concepts (same: {})",
        buf.len(),
        reloaded.num_concepts(),
        reloaded.num_concepts() == kg.num_concepts()
    );
}
