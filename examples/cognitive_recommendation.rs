//! Cognitive recommendation (§8.2.1, Figure 2b/c): instead of "similar to
//! what you viewed", infer the user's *need* from their history and
//! recommend a concept card with its items — plus a human-readable reason
//! (§8.2.2).
//!
//! ```sh
//! cargo run --release -p alicoco-suite --example cognitive_recommendation
//! ```

use alicoco::ItemId;
use alicoco_apps::{CognitiveRecommender, RecommendConfig};
use alicoco_corpus::Dataset;
use alicoco_mining::pipeline::{build_alicoco, PipelineConfig};

fn main() {
    println!("building AliCoCo (tiny world)...");
    let ds = Dataset::tiny();
    let (kg, _) = build_alicoco(&ds, &PipelineConfig::default());

    // Simulate a user who browsed a few items that belong to some scenario.
    let history: Vec<ItemId> = kg
        .item_ids()
        .filter(|&i| !kg.concepts_for_item(i).is_empty())
        .take(3)
        .collect();
    if history.is_empty() {
        println!("no linked items in this build — rerun with a larger world");
        return;
    }
    println!("\nuser history:");
    for &i in &history {
        println!("  viewed: {}", kg.item(i).title.join(" "));
    }

    let recommender = CognitiveRecommender::new(&kg, RecommendConfig::default());
    println!("\nrecommended concept cards:");
    for rec in recommender.recommend(&history) {
        println!("\n┌─ \"{}\"  (affinity {:.2})", rec.name, rec.affinity);
        println!("│  reason: {}", rec.reason.text(&kg, &rec.name));
        for (iid, w) in rec.items.iter().take(4) {
            println!("│    ({w:.2}) {}", kg.item(*iid).title.join(" "));
        }
        println!("└─");
    }
}
