//! Semantic search (§8.1.2, Figure 2a): a query triggers a concept card
//! with the items the scenario needs — "items you will need for outdoor
//! barbecue" — instead of plain keyword matching.
//!
//! ```sh
//! cargo run --release -p alicoco-suite --example semantic_search -- "barbecue outdoor"
//! ```

use alicoco_apps::{SearchConfig, SemanticSearch};
use alicoco_corpus::Dataset;
use alicoco_mining::pipeline::{build_alicoco, PipelineConfig};

fn main() {
    let query = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "barbecue outdoor".to_string());
    println!("building AliCoCo (tiny world)...");
    let ds = Dataset::tiny();
    let (kg, _) = build_alicoco(&ds, &PipelineConfig::default());
    let engine = SemanticSearch::new(&kg, SearchConfig::default());

    println!("\nsearch: {query:?}\n");
    let cards = engine.search(&query);
    if cards.is_empty() {
        // The pre-AliCoCo experience: bare keyword matching.
        println!("no concept card — falling back to keyword item search");
        for iid in engine.keyword_items(&query, 5) {
            println!("  {}", kg.item(iid).title.join(" "));
        }
        return;
    }
    for card in cards {
        println!(
            "┌─ concept card: \"{}\"  (match {:.2})",
            card.name, card.score
        );
        for (domain, surface) in &card.interpretation {
            println!("│  <{domain}: {surface}>");
        }
        println!("│  items you will need:");
        for (iid, w) in card.items.iter().take(5) {
            println!("│    ({w:.2}) {}", kg.item(*iid).title.join(" "));
        }
        if card.items.is_empty() {
            println!("│    (no items linked)");
        }
        println!("└─");
    }
}
