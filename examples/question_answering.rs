//! Scenario question answering (§8.1.2): the paper's aspirational query —
//! "What should I prepare for hosting next week's barbecue?" — answered
//! from the concept net as a shopping checklist.
//!
//! ```sh
//! cargo run --release -p alicoco-suite --example question_answering -- \
//!     "what should i prepare for hosting next week's barbecue?"
//! ```

use alicoco_apps::ScenarioQa;
use alicoco_corpus::Dataset;
use alicoco_mining::pipeline::{build_alicoco, PipelineConfig};

fn main() {
    let question = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "what should i prepare for hosting next week's barbecue?".to_string());

    println!("building AliCoCo (tiny world)...");
    let ds = Dataset::tiny();
    // Generate more concept candidates than the default so common scenarios
    // ("outdoor barbecue", "baking tools") make it into the net.
    let cfg = PipelineConfig {
        pattern_candidates: 600,
        item_candidates: 40,
        link_threshold: 0.35,
        ..Default::default()
    };
    let (kg, _) = build_alicoco(&ds, &cfg);
    let qa = ScenarioQa::new(&kg);

    println!("\nQ: {question}");
    match qa.answer(&question) {
        Some(answer) => {
            println!("A: for \"{}\" you will need:", answer.concept_name);
            for entry in &answer.checklist {
                println!("   [{:.0}%] {}", entry.confidence * 100.0, entry.title);
            }
        }
        None => {
            println!("A: I couldn't map that question to a shopping scenario.");
            println!(
                "   (content words: {:?})",
                ScenarioQa::content_words(&question)
            );
        }
    }

    // A few more canned questions to show breadth.
    for q in [
        "what do i need for baking?",
        "how do i get ready for winter skiing?",
        "what should i buy for a picnic in the park?",
    ] {
        println!("\nQ: {q}");
        match qa.answer(q) {
            Some(a) => {
                println!("A: {} —", a.concept_name);
                for e in a.checklist.iter().take(4) {
                    println!("   [{:.0}%] {}", e.confidence * 100.0, e.title);
                }
            }
            None => println!("A: no scenario found."),
        }
    }
}
